//===- gpusim/PerfCounters.h - Nsight-Compute-like counters ----------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hardware counters maintained by the timed simulator, mirroring the
/// Nsight Compute metrics the paper's Table 3 reports: executed IPC
/// (active and elapsed), SM busy %, DRAM throughput, memory busy % and
/// % of peak bandwidth.
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_GPUSIM_PERFCOUNTERS_H
#define CUASMRL_GPUSIM_PERFCOUNTERS_H

#include <cstdint>

namespace cuasmrl {
namespace gpusim {

/// Raw event counts from one simulated launch (one SM's perspective,
/// scaled over waves).
struct PerfCounters {
  uint64_t ElapsedCycles = 0;   ///< Total cycles from launch to drain.
  uint64_t ActiveCycles = 0;    ///< Cycles with >= 1 resident live warp.
  uint64_t IssuedInstrs = 0;    ///< Instructions issued (all schedulers).
  uint64_t IssueSlotCycles = 0; ///< Cycles x schedulers (issue capacity).
  uint64_t StallWaitCycles = 0; ///< Warp-cycles lost to scoreboard waits.
  uint64_t StallFixedCycles = 0;///< Warp-cycles lost to stall counts.
  uint64_t BankConflictCycles = 0; ///< Extra cycles from register banks.
  uint64_t ReuseHits = 0;       ///< Operand-collector reuse-cache hits.
  uint64_t ReuseMisses = 0;     ///< Reuse flags invalidated by switches.

  uint64_t L1Hits = 0;
  uint64_t L1Misses = 0;
  uint64_t L2Hits = 0;
  uint64_t L2Misses = 0;
  uint64_t SharedAccesses = 0;
  uint64_t DramBytes = 0;       ///< Bytes transferred to/from DRAM.
  uint64_t MemBusyCycles = 0;   ///< Cycles the LSU/DRAM path was busy.
  uint64_t LsuIssues = 0;       ///< Memory instructions entering the LSU.

  /// \name Per-stage pipeline counters
  /// One counter family per pipeline stage (warp select, fetch,
  /// operand fetch, execute dispatch, writeback/event-commit), so the
  /// stall structure of a schedule is observable per stage, not just
  /// in aggregate. Stage attribution of the pre-existing counters:
  /// StallWaitCycles is a select-stage reject reason, BankConflictCycles
  /// and ReuseHits/ReuseMisses belong to operand fetch, and the
  /// L1/L2/DRAM/LSU family belongs to the writeback stage's memory pipe.
  /// @{
  uint64_t SelectProbes = 0;     ///< Warp eligibility probes issued.
  uint64_t SelectIneligible = 0; ///< Probes rejected (any reason).
  uint64_t SelectIdleCycles = 0; ///< Scheduler-slots with no eligible warp.
  uint64_t FetchLabelSkips = 0;  ///< Label statements skipped advancing Pc.
  uint64_t ExecFixedLatOps = 0;  ///< Fixed-latency instructions dispatched.
  uint64_t ExecVarLatOps = 0;    ///< Variable-latency instructions dispatched.
  uint64_t WbEventsFired = 0;    ///< Completion events committed.
  uint64_t WbWritesCommitted = 0;///< Deferred register writes committed.
  uint64_t WbBarrierReleases = 0;///< Block-barrier release events fired.
  /// @}

  /// Host-side measurement-cache accounting (filled by
  /// MeasurementCache::accumulate, not by the simulator): lookups
  /// served from the shared cache vs. primary-slot simulations. Rare
  /// extra simulations (primary-hash collision fallbacks, retries
  /// after a throwing simulation) are outside these two counters —
  /// see MeasurementCache::collisions().
  uint64_t MeasureCacheHits = 0;
  uint64_t MeasureCacheMisses = 0;

  /// \name Derived metrics (Table 3 rows)
  /// @{
  double ipcActive() const {
    return ActiveCycles ? static_cast<double>(IssuedInstrs) / ActiveCycles
                        : 0.0;
  }
  double ipcElapsed() const {
    return ElapsedCycles ? static_cast<double>(IssuedInstrs) / ElapsedCycles
                         : 0.0;
  }
  double smBusyPct() const {
    return IssueSlotCycles
               ? 100.0 * static_cast<double>(IssuedInstrs) / IssueSlotCycles
               : 0.0;
  }
  double memBusyPct() const {
    return ElapsedCycles
               ? 100.0 * static_cast<double>(MemBusyCycles) / ElapsedCycles
               : 0.0;
  }
  /// Fraction of warp-select probes that found an issuable warp.
  double selectHitRate() const {
    return SelectProbes ? static_cast<double>(SelectProbes - SelectIneligible)
                              / SelectProbes
                        : 0.0;
  }
  /// @}

  PerfCounters &operator+=(const PerfCounters &Other);
};

/// Enumerates every counter field of \p A and \p B pairwise as
/// (name, fieldOfA, fieldOfB). The single authoritative field list:
/// the aggregation operator below and the stats serializer
/// (stats::countersToJson / countersFromJson) both walk it, so a
/// counter added here is automatically aggregated, serialized and
/// parsed — forgetting one of the three is impossible.
template <typename CA, typename CB, typename Fn>
void visitCounterFields(CA &A, CB &B, Fn &&F) {
  F("ElapsedCycles", A.ElapsedCycles, B.ElapsedCycles);
  F("ActiveCycles", A.ActiveCycles, B.ActiveCycles);
  F("IssuedInstrs", A.IssuedInstrs, B.IssuedInstrs);
  F("IssueSlotCycles", A.IssueSlotCycles, B.IssueSlotCycles);
  F("StallWaitCycles", A.StallWaitCycles, B.StallWaitCycles);
  F("StallFixedCycles", A.StallFixedCycles, B.StallFixedCycles);
  F("BankConflictCycles", A.BankConflictCycles, B.BankConflictCycles);
  F("ReuseHits", A.ReuseHits, B.ReuseHits);
  F("ReuseMisses", A.ReuseMisses, B.ReuseMisses);
  F("L1Hits", A.L1Hits, B.L1Hits);
  F("L1Misses", A.L1Misses, B.L1Misses);
  F("L2Hits", A.L2Hits, B.L2Hits);
  F("L2Misses", A.L2Misses, B.L2Misses);
  F("SharedAccesses", A.SharedAccesses, B.SharedAccesses);
  F("DramBytes", A.DramBytes, B.DramBytes);
  F("MemBusyCycles", A.MemBusyCycles, B.MemBusyCycles);
  F("LsuIssues", A.LsuIssues, B.LsuIssues);
  F("SelectProbes", A.SelectProbes, B.SelectProbes);
  F("SelectIneligible", A.SelectIneligible, B.SelectIneligible);
  F("SelectIdleCycles", A.SelectIdleCycles, B.SelectIdleCycles);
  F("FetchLabelSkips", A.FetchLabelSkips, B.FetchLabelSkips);
  F("ExecFixedLatOps", A.ExecFixedLatOps, B.ExecFixedLatOps);
  F("ExecVarLatOps", A.ExecVarLatOps, B.ExecVarLatOps);
  F("WbEventsFired", A.WbEventsFired, B.WbEventsFired);
  F("WbWritesCommitted", A.WbWritesCommitted, B.WbWritesCommitted);
  F("WbBarrierReleases", A.WbBarrierReleases, B.WbBarrierReleases);
  F("MeasureCacheHits", A.MeasureCacheHits, B.MeasureCacheHits);
  F("MeasureCacheMisses", A.MeasureCacheMisses, B.MeasureCacheMisses);
}

/// Enumerates every counter of \p C as (name, reference).
template <typename C, typename Fn> void visitCounters(C &Counters, Fn &&F) {
  visitCounterFields(Counters, Counters,
                     [&](const char *Name, auto &Value, auto &) {
                       F(Name, Value);
                     });
}

inline PerfCounters &PerfCounters::operator+=(const PerfCounters &Other) {
  visitCounterFields(*this, Other,
                     [](const char *, uint64_t &Mine, const uint64_t &Theirs) {
                       Mine += Theirs;
                     });
  return *this;
}

} // namespace gpusim
} // namespace cuasmrl

#endif // CUASMRL_GPUSIM_PERFCOUNTERS_H

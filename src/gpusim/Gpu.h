//===- gpusim/Gpu.h - Simulated GPU facade -----------------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The device the rest of the library talks to. `Gpu` owns global
/// memory and the cache hierarchy state, and runs kernels in one of two
/// modes:
///
///  - `RunMode::Oracle` — architectural reference execution in program
///    order with immediate commits. Defines "the right answer" for
///    probabilistic testing (§4.1) and produces no timing.
///  - `RunMode::Timed` — the cycle-approximate Ampere SM model: four
///    greedy-then-oldest warp schedulers, control-code stall counts and
///    scoreboard waits, an LSU with cache/DRAM latencies and bandwidth
///    backpressure, register-bank conflicts with an operand reuse cache,
///    and hazard-faithful register reads (a consumer issued too early
///    reads the *stale* value — this is what makes invalid schedules
///    measurably wrong rather than merely slow).
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_GPUSIM_GPU_H
#define CUASMRL_GPUSIM_GPU_H

#include "gpusim/Cache.h"
#include "gpusim/GpuSpec.h"
#include "gpusim/Launch.h"
#include "gpusim/Memory.h"

#include <memory>

namespace cuasmrl {
namespace sass {
class Program;
}
namespace gpusim {

class DecodedProgram;

/// Execution fidelity mode.
enum class RunMode {
  Oracle, ///< Program-order reference semantics (no timing).
  Timed,  ///< Cycle-approximate timing with hazard-faithful values.
};

/// Simulated device.
class Gpu {
public:
  explicit Gpu(GpuSpec Spec = GpuSpec());

  const GpuSpec &spec() const { return Spec; }
  GlobalMemory &globalMemory() { return Global; }
  const GlobalMemory &globalMemory() const { return Global; }

  /// Invalidates L1 and L2 (between measurement reps, §3.6).
  void clearCaches();

  /// Runs \p Prog under \p Launch.
  ///
  /// \param MaxBlocks when nonzero, simulate only the first \p MaxBlocks
  ///        blocks and extrapolate timing over the full grid (used by the
  ///        reward loop where only relative timing matters); when zero,
  ///        execute every block (used when output buffers must be
  ///        completely written, e.g. probabilistic testing).
  ///
  /// This overload decodes \p Prog into a fresh kernel image first
  /// (O(program), once per call). Callers that run the same schedule
  /// repeatedly — or maintain an image incrementally across swaps, like
  /// the assembly game — should use the image-supplying overload below.
  RunResult run(const sass::Program &Prog, const KernelLaunch &Launch,
                RunMode Mode, unsigned MaxBlocks = 0);

  /// As above, but executes through the caller's pre-decoded image.
  /// \p Decoded must be positionally aligned with \p Prog (same size,
  /// record \c i decoded from statement \c i) — asserted in debug.
  RunResult run(const sass::Program &Prog, const DecodedProgram &Decoded,
                const KernelLaunch &Launch, RunMode Mode,
                unsigned MaxBlocks = 0);

  /// Blocks per SM the occupancy rules admit for this launch.
  unsigned residentBlocks(const KernelLaunch &Launch) const;

private:
  GpuSpec Spec;
  GlobalMemory Global;
  Cache L1;
  Cache L2;

  friend class TimedMachine;
};

} // namespace gpusim
} // namespace cuasmrl

#endif // CUASMRL_GPUSIM_GPU_H

//===- gpusim/Gpu.h - Simulated GPU facade -----------------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The device the rest of the library talks to. `Gpu` owns global
/// memory and the cache hierarchy state, and runs kernels in one of two
/// modes:
///
///  - `RunMode::Oracle` — architectural reference execution in program
///    order with immediate commits. Defines "the right answer" for
///    probabilistic testing (§4.1) and produces no timing.
///  - `RunMode::Timed` — the cycle-approximate Ampere SM model: four
///    greedy-then-oldest warp schedulers, control-code stall counts and
///    scoreboard waits, an LSU with cache/DRAM latencies and bandwidth
///    backpressure, register-bank conflicts with an operand reuse cache,
///    and hazard-faithful register reads (a consumer issued too early
///    reads the *stale* value — this is what makes invalid schedules
///    measurably wrong rather than merely slow).
///
/// The timed machine itself lives in `gpusim/pipeline/` as explicit
/// stages (see docs/SIMULATOR.md). The facade keeps one machine as
/// scratch and rebinds it per run, so back-to-back runs on the same
/// device — an RL episode, a measurement's warmup+reps — pay no per-run
/// allocation churn. The scratch is an implementation cache, never
/// copied with the device and dropped on copy/move.
///
/// `runBatch` advances N candidate schedules of one kernel in lockstep,
/// each lane on a private snapshot of this device — bit-identical per
/// lane to N separate copy-and-run sequences (the batch determinism
/// contract, docs/SIMULATOR.md).
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_GPUSIM_GPU_H
#define CUASMRL_GPUSIM_GPU_H

#include "gpusim/Cache.h"
#include "gpusim/GpuSpec.h"
#include "gpusim/Launch.h"
#include "gpusim/Memory.h"

#include <memory>
#include <vector>

namespace cuasmrl {
namespace sass {
class Program;
}
namespace gpusim {

class DecodedProgram;
class TimedMachine;

/// Execution fidelity mode.
enum class RunMode {
  Oracle, ///< Program-order reference semantics (no timing).
  Timed,  ///< Cycle-approximate timing with hazard-faithful values.
};

/// Simulated device.
class Gpu {
public:
  explicit Gpu(GpuSpec Spec = GpuSpec());
  ~Gpu();

  /// Copying a device snapshots its architectural state (memory, cache
  /// hierarchy) but never the scratch machine — a copy behaves exactly
  /// like a copy of the pre-staged device.
  Gpu(const Gpu &O);
  Gpu &operator=(const Gpu &O);
  Gpu(Gpu &&O) noexcept;
  Gpu &operator=(Gpu &&O) noexcept;

  const GpuSpec &spec() const { return Spec; }
  GlobalMemory &globalMemory() { return Global; }
  const GlobalMemory &globalMemory() const { return Global; }

  /// Invalidates L1 and L2 (between measurement reps, §3.6).
  void clearCaches();

  /// Runs \p Prog under \p Launch.
  ///
  /// \param MaxBlocks when nonzero, simulate only the first \p MaxBlocks
  ///        blocks and extrapolate timing over the full grid (used by the
  ///        reward loop where only relative timing matters); when zero,
  ///        execute every block (used when output buffers must be
  ///        completely written, e.g. probabilistic testing).
  ///
  /// This overload decodes \p Prog into a fresh kernel image first
  /// (O(program), once per call). Callers that run the same schedule
  /// repeatedly — or maintain an image incrementally across swaps, like
  /// the assembly game — should use the image-supplying overload below.
  RunResult run(const sass::Program &Prog, const KernelLaunch &Launch,
                RunMode Mode, unsigned MaxBlocks = 0);

  /// As above, but executes through the caller's pre-decoded image.
  /// \p Decoded must be positionally aligned with \p Prog (same size,
  /// record \c i decoded from statement \c i) — asserted in debug.
  RunResult run(const sass::Program &Prog, const DecodedProgram &Decoded,
                const KernelLaunch &Launch, RunMode Mode,
                unsigned MaxBlocks = 0);

  /// One candidate schedule for runBatch(). The decoded image is
  /// optional (decoded on the fly when null, like the two-argument
  /// run() overload).
  struct BatchCandidate {
    const sass::Program *Prog = nullptr;
    const DecodedProgram *Decoded = nullptr;
  };

  /// Runs every candidate under \p Launch, lane \c i starting from a
  /// private snapshot of this device. Lanes advance in lockstep (one
  /// resident-block group per lane per turn, sharing one write-buffer
  /// pool); each lane's RunResult is bit-identical to
  /// `Gpu Lane(*this); Lane.run(*C.Prog, ..., Mode, MaxBlocks)`.
  /// This device itself is not mutated.
  std::vector<RunResult> runBatch(const std::vector<BatchCandidate> &Cands,
                                  const KernelLaunch &Launch, RunMode Mode,
                                  unsigned MaxBlocks = 0);

  /// One lane of runLanes(): a caller-owned device plus what to run on
  /// it. For candidates with heterogeneous launches/limits (autotune
  /// sweeps), where each lane keeps its device across further use
  /// (output readback, measurement reps).
  struct BatchLane {
    Gpu *Device = nullptr;
    const sass::Program *Prog = nullptr;
    const DecodedProgram *Decoded = nullptr; ///< Optional pre-decoded image.
    const KernelLaunch *Launch = nullptr;
    unsigned MaxBlocks = 0;
  };

  /// Advances all lanes in lockstep; lane \c i's result is
  /// bit-identical to `Lanes[i].Device->run(...)` with the lane's
  /// arguments. Lane devices must be distinct objects.
  static std::vector<RunResult> runLanes(const std::vector<BatchLane> &Lanes,
                                         RunMode Mode);

  /// Blocks per SM the occupancy rules admit for this launch.
  unsigned residentBlocks(const KernelLaunch &Launch) const;

private:
  /// The lazily built, per-run rebindable scratch machine.
  TimedMachine &scratchMachine();

  GpuSpec Spec;
  GlobalMemory Global;
  Cache L1;
  Cache L2;
  std::unique_ptr<TimedMachine> Scratch;

  friend class TimedMachine;
};

} // namespace gpusim
} // namespace cuasmrl

#endif // CUASMRL_GPUSIM_GPU_H

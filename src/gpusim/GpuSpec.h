//===- gpusim/GpuSpec.h - Simulated GPU architecture parameters -----------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Architectural constants of the simulated Ampere-class GPU. Defaults
/// approximate an NVIDIA A100-80GB-PCIe (the paper's evaluation target):
/// 108 SMs at 1.41 GHz, four warp schedulers per SM, a 192 KB combined
/// L1/shared per SM, a 40 MB L2 and ~1.9 TB/s of DRAM bandwidth.
///
/// The timing model is cycle-approximate, not cycle-exact: what matters
/// for the reproduction is that the mechanisms the paper's RL agent
/// exploits (issue stalls, scoreboard waits, LDGSTS/math overlap, the
/// operand reuse cache, warp switching) are present with realistic
/// relative magnitudes.
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_GPUSIM_GPUSPEC_H
#define CUASMRL_GPUSIM_GPUSPEC_H

#include <cstdint>

namespace cuasmrl {
namespace gpusim {

/// Tunable architecture description.
struct GpuSpec {
  /// \name Chip layout
  /// @{
  unsigned NumSMs = 108;
  unsigned SchedulersPerSM = 4;
  unsigned MaxWarpsPerSM = 64;
  unsigned MaxBlocksPerSM = 32;
  double ClockGHz = 1.41;
  /// @}

  /// \name Register file / operand collector
  /// @{
  unsigned RegisterBanks = 4;
  /// Extra issue cycles per same-bank source-operand collision that the
  /// reuse cache did not absorb.
  unsigned BankConflictPenalty = 2;
  /// @}

  /// \name Memory latencies (cycles, load-to-use)
  /// @{
  unsigned SharedLatency = 25;
  unsigned L1Latency = 35;
  unsigned L2Latency = 220;
  unsigned DramLatency = 450;
  unsigned ConstLatency = 8;
  /// @}

  /// \name Caches
  /// @{
  unsigned CacheLineBytes = 128;
  unsigned L1Bytes = 128 * 1024;
  unsigned L1Ways = 4;
  unsigned L2Bytes = 4 * 1024 * 1024; ///< Per-SM effective slice.
  unsigned L2Ways = 8;
  /// @}

  /// \name Bandwidth / queues
  /// @{
  /// Memory instructions the SM's LSU pipeline accepts per cycle.
  unsigned LsuIssuesPerCycle = 1;
  /// DRAM bytes per SM per cycle (A100: ~1.9 TB/s / 108 SMs / 1.41 GHz
  /// ~= 12.5 B/cycle/SM).
  double DramBytesPerCycle = 12.5;
  /// Cost of a BAR.SYNC once all warps arrived.
  unsigned BarrierLatency = 30;
  /// Extra cycles consumed by a taken branch.
  unsigned BranchPenalty = 5;
  /// @}

  /// Bytes moved per lane by a 32/64/128-bit access times 32 lanes is
  /// implied; warp-scalar simulation multiplies by this lane count when
  /// accounting DRAM traffic.
  unsigned LanesPerWarp = 32;

  /// Per-thread registers below this bound cost no occupancy (simplified
  /// occupancy model: blocksPerSM limited by shared memory only).
  unsigned SharedBytesPerSM = 164 * 1024;
};

} // namespace gpusim
} // namespace cuasmrl

#endif // CUASMRL_GPUSIM_GPUSPEC_H

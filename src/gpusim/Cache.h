//===- gpusim/Cache.h - Set-associative cache tag array ---------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Timing-only LRU tag array for the L1 and L2 models. Data is carried
/// by the functional memory spaces; the cache only answers hit/miss.
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_GPUSIM_CACHE_H
#define CUASMRL_GPUSIM_CACHE_H

#include <cstdint>
#include <vector>

namespace cuasmrl {
namespace gpusim {

/// LRU set-associative tag array.
class Cache {
public:
  Cache(unsigned TotalBytes, unsigned LineBytes, unsigned Ways)
      : LineBytes(LineBytes), Ways(Ways),
        Sets(TotalBytes / LineBytes / Ways ? TotalBytes / LineBytes / Ways
                                           : 1),
        Tags(Sets * Ways, EmptyTag), Stamps(Sets * Ways, 0) {}

  /// Looks up (and on miss, fills) the line containing \p Addr.
  /// \returns true on hit.
  bool access(uint64_t Addr) {
    uint64_t Line = Addr / LineBytes;
    uint64_t Set = Line % Sets;
    uint64_t *SetTags = &Tags[Set * Ways];
    uint64_t *SetStamps = &Stamps[Set * Ways];
    ++Tick;
    unsigned Victim = 0;
    for (unsigned W = 0; W < Ways; ++W) {
      if (SetTags[W] == Line) {
        SetStamps[W] = Tick;
        return true;
      }
      if (SetStamps[W] < SetStamps[Victim])
        Victim = W;
    }
    SetTags[Victim] = Line;
    SetStamps[Victim] = Tick;
    return false;
  }

  /// Invalidates every line (the paper clears L2 between measurement
  /// iterations, §3.6).
  void clear() {
    Tags.assign(Tags.size(), EmptyTag);
    Stamps.assign(Stamps.size(), 0);
  }

private:
  static constexpr uint64_t EmptyTag = ~0ull;
  unsigned LineBytes;
  unsigned Ways;
  uint64_t Sets;
  std::vector<uint64_t> Tags;
  std::vector<uint64_t> Stamps;
  uint64_t Tick = 0;
};

} // namespace gpusim
} // namespace cuasmrl

#endif // CUASMRL_GPUSIM_CACHE_H

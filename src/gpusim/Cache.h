//===- gpusim/Cache.h - Set-associative cache tag array ---------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Timing-only LRU tag array for the L1 and L2 models. Data is carried
/// by the functional memory spaces; the cache only answers hit/miss.
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_GPUSIM_CACHE_H
#define CUASMRL_GPUSIM_CACHE_H

#include <cstdint>
#include <vector>

namespace cuasmrl {
namespace gpusim {

/// LRU set-associative tag array.
///
/// Invalidation is epoch-based: every entry stamps the epoch it was
/// filled in, and `clear()` just bumps the current epoch — entries from
/// older epochs read as empty. The reward loop clears L2 between every
/// measurement repetition (§3.6), so invalidation must be O(1), not a
/// half-megabyte tag-array refill.
class Cache {
public:
  Cache(unsigned TotalBytes, unsigned LineBytes, unsigned Ways)
      : LineBytes(LineBytes), Ways(Ways),
        Sets(TotalBytes / LineBytes / Ways ? TotalBytes / LineBytes / Ways
                                           : 1),
        Tags(Sets * Ways, EmptyTag), Stamps(Sets * Ways, 0),
        Epochs(Sets * Ways, 0) {}

  /// Looks up (and on miss, fills) the line containing \p Addr.
  /// \returns true on hit.
  bool access(uint64_t Addr) {
    uint64_t Line = Addr / LineBytes;
    uint64_t Set = Line % Sets;
    uint64_t *SetTags = &Tags[Set * Ways];
    uint64_t *SetStamps = &Stamps[Set * Ways];
    uint64_t *SetEpochs = &Epochs[Set * Ways];
    ++Tick;
    unsigned Victim = 0;
    uint64_t VictimStamp = ~0ull;
    for (unsigned W = 0; W < Ways; ++W) {
      bool Live = SetEpochs[W] == Epoch;
      if (Live && SetTags[W] == Line) {
        SetStamps[W] = Tick;
        return true;
      }
      // Stale entries count as empty (stamp 0): preferred victims.
      uint64_t Stamp = Live ? SetStamps[W] : 0;
      if (Stamp < VictimStamp) {
        VictimStamp = Stamp;
        Victim = W;
      }
    }
    SetTags[Victim] = Line;
    SetStamps[Victim] = Tick;
    SetEpochs[Victim] = Epoch;
    return false;
  }

  /// Invalidates every line in O(1) (the paper clears L2 between
  /// measurement iterations, §3.6).
  void clear() { ++Epoch; }

private:
  static constexpr uint64_t EmptyTag = ~0ull;
  unsigned LineBytes;
  unsigned Ways;
  uint64_t Sets;
  std::vector<uint64_t> Tags;
  std::vector<uint64_t> Stamps;
  std::vector<uint64_t> Epochs;
  uint64_t Tick = 0;
  uint64_t Epoch = 1;
};

} // namespace gpusim
} // namespace cuasmrl

#endif // CUASMRL_GPUSIM_CACHE_H

//===- gpusim/Executor.h - Execute-stage result contract ---------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The machine-facing contract of the execute stage: `ExecResult`, the
/// control-flow guidance one executed instruction hands back to
/// whichever machine drove it.
///
/// The functional semantics themselves (an `executeInstr` template over
/// an execution-context concept) live in `pipeline/ExecutorImpl.h` and
/// are compiled exactly once, in the execute-stage TU
/// (`pipeline/ExecuteStage.cpp`) — machines call the `executeTimed` /
/// `executeOracle` entry points declared in `pipeline/ExecuteStage.h`
/// rather than instantiating the ~750-line opcode switch themselves.
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_GPUSIM_EXECUTOR_H
#define CUASMRL_GPUSIM_EXECUTOR_H

#include <cstdint>
#include <string_view>

namespace cuasmrl {
namespace gpusim {

/// What the machine must do after executing one instruction.
struct ExecResult {
  enum class Kind : uint8_t {
    Normal,       ///< Fall through to the next statement.
    Branch,       ///< Jump to `TargetIdx` / `Target`.
    Exit,         ///< Warp finished.
    BlockBarrier, ///< BAR.SYNC: block until all block warps arrive.
  };
  Kind K = Kind::Normal;
  std::string_view Target; ///< Branch label (points into the operand).
  /// Branch target as a statement index, pre-resolved by the decoded
  /// image; -1 when unresolved (unknown label, or the instruction was
  /// executed through the decode-on-the-fly compatibility overload).
  int32_t TargetIdx = -1;
  bool Predicated = true;  ///< False when the guard suppressed execution.
};

} // namespace gpusim
} // namespace cuasmrl

#endif // CUASMRL_GPUSIM_EXECUTOR_H

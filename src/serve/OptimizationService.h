//===- serve/OptimizationService.h - Concurrent optimization server (§4.2) ---===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The §4.2 deployment workflow as a server: "offline search, online
/// lookup". An OptimizationService accepts OptimizeRequests — (GPU
/// type, workload kind, shape, optional OptimizeConfig overrides,
/// priority) — and resolves each one through the front door in order:
///
///   1. Lookup hit: the request key is already in the DeployCache →
///      the stored cubin is returned immediately, zero training.
///   2. Attach: an identical key is already queued or running → the
///      request joins that job (single-flight; mirrors the
///      single-sweep-per-key guarantee of MeasurementCache and
///      Autotuner) and shares its response.
///   3. Near miss (optional): the key misses but another shape of the
///      same (GpuType, kind) is deployed → the nearest one is served
///      immediately as Status::Degraded while the exact-shape job runs
///      in the background and upgrades the cache.
///   4. Enqueue: a full hierarchical Optimizer::optimize() job enters
///      the bounded priority queue; a worker drives it and the
///      verified winner is persisted back through the DeployCache so
///      every later request for the key is a lookup.
///
/// Failure handling (the hardening contract): each request may carry a
/// deadline — expired-in-queue entries are shed without running,
/// mid-job expiry trips a CancelToken the Optimizer polls at
/// cooperative checkpoints (per autotune candidate, per rollout slot,
/// per PPO epoch), both resolving as Status::DeadlineExceeded.
/// Transient cache-store/load failures and TransientError jobs are
/// retried under ServiceConfig::Retry with seeded-jittered exponential
/// backoff. A job that throws resolves that key's response (submitter
/// AND attached waiters) as Status::Failed — never a dead worker,
/// never a stuck single-flight key. Every such event lands in a
/// ServiceStats counter.
///
/// Determinism contract: a request's response payload is a pure
/// function of (prototype device, ServiceConfig::Seed, request key).
/// Every job runs on a private copy of the prototype Gpu with a data
/// Rng derived from (Seed, key), so responses are bit-identical for
/// any worker count — the same contract the rollout engine and the
/// autotune sweep engine honor. Worker count and priorities change
/// wall-clock and completion order only.
///
/// Thread-safety contract: every public member may be called
/// concurrently from any number of threads. submit() blocks while the
/// queue is at ServiceConfig::MaxQueued (backpressure); trySubmit()
/// rejects instead. Completion callbacks run on the worker thread
/// that finished the job (on the submitting thread for immediate
/// lookup hits, and on the thread driving shutdown() for cancelled
/// jobs); they must not call back into the service except stats(),
/// and should not throw — an escaping exception is contained and
/// logged, never re-thrown.
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_SERVE_OPTIMIZATIONSERVICE_H
#define CUASMRL_SERVE_OPTIMIZATIONSERVICE_H

#include "core/Optimizer.h"
#include "serve/DeployIndex.h"
#include "serve/JobQueue.h"
#include "serve/PolicyStore.h"
#include "support/Cancellation.h"
#include "support/Clock.h"
#include "support/FaultInjector.h"
#include "support/Retry.h"
#include "support/ThreadPool.h"

#include <chrono>
#include <condition_variable>
#include <future>
#include <memory>
#include <optional>
#include <thread>
#include <unordered_map>

namespace cuasmrl {
namespace serve {

/// One optimization request (the service's unit of admission).
struct OptimizeRequest {
  kernels::WorkloadKind Kind = kernels::WorkloadKind::Softmax;
  kernels::WorkloadShape Shape;
  /// The paper keys deployed cubins by GPU type first (§4.2).
  std::string GpuType = "A100-SIM";
  /// Overrides for this request; nullopt = ServiceConfig::Defaults.
  /// Every result-relevant field participates in the request key, so
  /// two requests with different effective configs never share a job
  /// or a deployed cubin (wall-clock-only knobs — RolloutWorkers,
  /// AutotuneWorkers — are excluded from the key by design).
  std::optional<core::OptimizeConfig> Config;
  /// Higher pops first; FIFO within one priority. An attaching
  /// duplicate inherits the original job's priority.
  int Priority = 0;
  /// Per-request deadline measured from admission; 0 = none (then
  /// ServiceConfig::DefaultTimeout applies). A request whose deadline
  /// passes resolves as Status::DeadlineExceeded: shed from the queue
  /// if it never started, cancelled at the next cooperative checkpoint
  /// if mid-job.
  std::chrono::milliseconds Timeout{0};
  /// Opt-out of near-miss degradation for this request: when false, a
  /// cache miss always waits for the exact-shape job.
  bool AllowDegraded = true;
};

/// Everything a resolved request carries.
struct OptimizeResponse {
  enum class Status {
    Optimized, ///< A full optimize job ran; Result is populated.
    LookupHit, ///< Served from the DeployCache; zero training.
    Degraded,  ///< Cache miss served from the nearest deployed shape
               ///< (same GpuType and kind) while the exact-shape job
               ///< upgrades the cache in the background.
    Cancelled, ///< Shut down (or queue closed) before the job ran.
    DeadlineExceeded, ///< Deadline passed: shed in queue or cancelled
                      ///< at a cooperative checkpoint mid-job.
    Failed,    ///< The job threw (or exhausted its retries); see Error.
    Rejected,  ///< Never admitted: the service was draining/shut down,
               ///< or the queue was full (trySubmit); see Error. The
               ///< ticket's future is already resolved with this
               ///< response, so a caller that .get()s it never blocks.
  };
  Status St = Status::Failed;
  std::string Key; ///< The deploy-cache key the request resolved to.
  /// The winner binary: the deployed cubin on a lookup hit, the
  /// optimized (substituted) binary after a successful job — or, on a
  /// Degraded response, the nearest deployed cubin (see DegradedFrom).
  cubin::CubinFile Binary;
  /// Full optimize() output (Status::Optimized only).
  core::OptimizeResult Result;
  /// True when this job's verified winner reached the DeployCache.
  bool Persisted = false;
  /// Status::Degraded only: the deploy-cache key actually served.
  std::string DegradedFrom;
  /// Status::Optimized only: the policy-store key training warm-
  /// started from (empty = cold start; Result.WarmStartTensors counts
  /// the transferred tensors).
  std::string WarmStartedFrom;
  std::string Error;
  double WallMs = 0.0; ///< Admission-to-resolution wall time.
};

using ResponsePtr = std::shared_ptr<const OptimizeResponse>;

/// How the front door resolved an admission (the §4.2 three-way split).
enum class Admission {
  LookupHit, ///< Resolved immediately from the DeployCache.
  Attached,  ///< Joined an in-flight job for the same key.
  Enqueued,  ///< A new optimize job entered the queue.
  NearMiss,  ///< Served degraded from the nearest deployed shape; the
             ///< exact-shape job was enqueued in the background.
  Rejected,  ///< Queue full (trySubmit) or service no longer accepting.
};

/// Handle returned per request.
struct Ticket {
  Admission How = Admission::Rejected;
  std::string Key;
  /// Resolves when the request does. A Rejected ticket's future is
  /// already resolved with a Status::Rejected response whose Error
  /// says why (draining vs. queue full) — waiting on it returns
  /// immediately instead of blocking forever.
  std::shared_future<ResponsePtr> Response;
  bool valid() const { return How != Admission::Rejected; }
};

/// Aggregate service counters (one consistent snapshot).
struct ServiceStats {
  uint64_t Submitted = 0;   ///< Admitted requests (hits + merges + jobs).
  uint64_t Rejected = 0;    ///< Backpressure / not-accepting rejections.
  uint64_t LookupHits = 0;  ///< Requests served straight from the cache.
  uint64_t Merged = 0;      ///< Single-flight attaches to in-flight jobs.
  uint64_t Enqueued = 0;    ///< New optimize jobs admitted.
  uint64_t QueuedNow = 0;   ///< Jobs admitted but not yet started.
  uint64_t RunningNow = 0;  ///< Jobs currently on a worker.
  uint64_t Completed = 0;   ///< Optimize jobs finished successfully.
  uint64_t Failed = 0;      ///< Optimize jobs that threw.
  uint64_t Cancelled = 0;   ///< Jobs cancelled by shutdown().
  uint64_t OptimizeRuns = 0;    ///< Optimizer::optimize() invocations.
  uint64_t TrainingUpdates = 0; ///< PPO updates across all jobs.
  uint64_t PersistStores = 0;   ///< Winners persisted to the cache.
  uint64_t PersistFailures = 0; ///< DeployCache::store() failures.
  uint64_t DeadlineExceeded = 0; ///< Requests resolved past deadline.
  uint64_t ExpiredInQueue = 0;   ///< ...of which shed before starting.
  uint64_t ExpiredMidJob = 0;    ///< ...of which cancelled mid-job.
  uint64_t DegradedHits = 0;     ///< Near-miss responses served.
  uint64_t NearMissUpgrades = 0; ///< Background jobs that upgraded a
                                 ///< degraded key to an exact deploy.
  uint64_t WarmStarts = 0;       ///< Jobs that transferred >= 1 tensor
                                 ///< from a stored policy.
  uint64_t WarmStartTensors = 0; ///< ...tensors transferred in total.
  uint64_t PolicyStores = 0;     ///< Trained policies persisted.
  uint64_t PolicyStoreFailures = 0; ///< PolicyStore::store() failures.
  uint64_t ClaimWaits = 0;  ///< Jobs that found another process's
                            ///< claim on their key and waited.
  uint64_t ClaimHits = 0;   ///< ...of which were then served from the
                            ///< cubin that process deployed.
  uint64_t ClaimBreaks = 0; ///< Stale (abandoned) claims broken.
  uint64_t JobRetries = 0;       ///< Transient job errors retried.
  uint64_t StoreRetries = 0;     ///< DeployCache::store retries.
  uint64_t LoadRetries = 0;      ///< DeployCache::load retries.
  uint64_t RetryExhausted = 0;   ///< Retry loops that ran out of
                                 ///< attempts (job, store, or load).
  uint64_t FaultsInjected = 0;   ///< FaultInjector faults fired (0
                                 ///< without an injector).
  double TotalJobWallMs = 0.0;  ///< Summed per-job wall time.
  /// Rollout counter aggregate summed over all jobs: measurement-cache
  /// accounting plus the per-stage simulator counters (warp select /
  /// fetch / execute / writeback) of every reward measurement.
  gpusim::PerfCounters Counters;
  /// Keys currently deployed (DeployCache enumeration; 0 without one).
  uint64_t DeployedKeys = 0;
};

/// Enumerates every scalar ServiceStats field as (name, reference) —
/// uint64 counters plus the double wall-time accumulator; the nested
/// PerfCounters aggregate is deliberately excluded (walk it with
/// gpusim::visitCounters). The stats subsystem's serializer and
/// parser both use this list, so a field added here round-trips
/// automatically.
template <typename S, typename Fn> void visitServiceCounters(S &Stats,
                                                             Fn &&F) {
  F("Submitted", Stats.Submitted);
  F("Rejected", Stats.Rejected);
  F("LookupHits", Stats.LookupHits);
  F("Merged", Stats.Merged);
  F("Enqueued", Stats.Enqueued);
  F("QueuedNow", Stats.QueuedNow);
  F("RunningNow", Stats.RunningNow);
  F("Completed", Stats.Completed);
  F("Failed", Stats.Failed);
  F("Cancelled", Stats.Cancelled);
  F("OptimizeRuns", Stats.OptimizeRuns);
  F("TrainingUpdates", Stats.TrainingUpdates);
  F("PersistStores", Stats.PersistStores);
  F("PersistFailures", Stats.PersistFailures);
  F("DeadlineExceeded", Stats.DeadlineExceeded);
  F("ExpiredInQueue", Stats.ExpiredInQueue);
  F("ExpiredMidJob", Stats.ExpiredMidJob);
  F("DegradedHits", Stats.DegradedHits);
  F("NearMissUpgrades", Stats.NearMissUpgrades);
  F("WarmStarts", Stats.WarmStarts);
  F("WarmStartTensors", Stats.WarmStartTensors);
  F("PolicyStores", Stats.PolicyStores);
  F("PolicyStoreFailures", Stats.PolicyStoreFailures);
  F("ClaimWaits", Stats.ClaimWaits);
  F("ClaimHits", Stats.ClaimHits);
  F("ClaimBreaks", Stats.ClaimBreaks);
  F("JobRetries", Stats.JobRetries);
  F("StoreRetries", Stats.StoreRetries);
  F("LoadRetries", Stats.LoadRetries);
  F("RetryExhausted", Stats.RetryExhausted);
  F("FaultsInjected", Stats.FaultsInjected);
  F("TotalJobWallMs", Stats.TotalJobWallMs);
  F("DeployedKeys", Stats.DeployedKeys);
}

/// Service configuration.
struct ServiceConfig {
  /// Optimizer workers; 0 = hardware concurrency. A wall-clock knob
  /// only: responses are bit-identical for every value.
  unsigned Workers = 1;
  /// Queue bound for backpressure; 0 = unbounded.
  size_t MaxQueued = 0;
  /// Root of every per-job data-Rng stream (see the determinism
  /// contract in the file comment).
  uint64_t Seed = 7;
  /// Deploy-cache directory; empty disables lookup and persistence
  /// (every admission becomes attach-or-enqueue).
  std::string DeployDir;
  /// Effective config for requests that carry no override.
  core::OptimizeConfig Defaults;
  /// When true, admitted jobs wait until start() — batch admission
  /// with deterministic priority ordering (and the hook the tests and
  /// benches use to fix the admission pattern before any job runs).
  bool StartPaused = false;
  /// Time source for deadlines, backoff sleeps, and wall-time stats;
  /// null = support::Clock::real(). Tests inject a FakeClock so
  /// deadline and retry behavior is instant and bit-deterministic.
  support::Clock *ClockSrc = nullptr;
  /// Deterministic fault injector wired behind the service and its
  /// DeployCache; null disables every site. Not owned; must outlive
  /// the service.
  support::FaultInjector *Faults = nullptr;
  /// Backoff policy shared by the store/load/transient-job retry loops.
  support::RetryPolicy Retry;
  /// Deadline applied to requests whose Timeout is 0; 0 = none.
  std::chrono::milliseconds DefaultTimeout{0};
  /// Master switch for near-miss degradation (per-request opt-out via
  /// OptimizeRequest::AllowDegraded).
  bool EnableNearMiss = true;
  /// Policy-checkpoint directory; empty disables warm starts entirely.
  /// When set, a cache-miss job initializes training from the stored
  /// policy nearest its shape (same GpuType and kind; its own key's
  /// policy wins when present) instead of a fresh orthogonal init.
  ///
  /// Determinism caveat: warm starts make a job's response a pure
  /// function of (prototype device, Seed, request key, POLICY-STORE
  /// CONTENTS AT JOB START). With a fixed store (PersistPolicies =
  /// false, or no two jobs of the same kind in flight) responses stay
  /// bit-identical for any worker count; with concurrent same-kind
  /// jobs persisting policies, completion order feeds later jobs
  /// different (better-trained) starting points by design.
  std::string PolicyDir;
  /// Persist each successful job's trained policy back to PolicyDir
  /// so later near-shape jobs warm-start from it. Turn off to serve
  /// from a fixed pre-trained shelf (bit-deterministic responses).
  bool PersistPolicies = true;
  /// Queue-aging knobs (see JobQueue::Options): every AgingInterval of
  /// wait raises a queued job's effective priority by AgingStep, so
  /// low-priority work cannot starve behind a hot key. 0 disables.
  std::chrono::milliseconds AgingInterval{0};
  int AgingStep = 1;
  /// Cross-process single-flight over a shared DeployDir: before
  /// running a cache-miss job, the worker claims
  /// `<DeployDir>/.claims/<key>.lock` (support::FileLock). Losing the
  /// race means another process is already optimizing the key; the
  /// worker waits for that claim to clear and serves the winner's
  /// deployed cubin instead of duplicating the job. Requires a
  /// DeployDir; off by default (in-process single-flight needs no
  /// files). Claim heartbeats are wall-clock file mtimes, so staleness
  /// runs on real time even under a FakeClock (see FileLock.h).
  bool CrossProcessClaims = false;
  /// A claim whose heartbeat is older than this is presumed abandoned
  /// (crashed owner) and broken by the next waiter.
  std::chrono::milliseconds ClaimStaleAfter{10000};
  /// Waiter poll cadence while another process holds a claim.
  std::chrono::milliseconds ClaimPollInterval{20};
  /// Heartbeat cadence for claims this service holds; 0 derives
  /// ClaimStaleAfter / 4.
  std::chrono::milliseconds ClaimHeartbeat{0};
};

/// The optimization server.
class OptimizationService {
public:
  explicit OptimizationService(const gpusim::Gpu &Prototype,
                               ServiceConfig Config);
  /// Equivalent to shutdown().
  ~OptimizationService();

  OptimizationService(const OptimizationService &) = delete;
  OptimizationService &operator=(const OptimizationService &) = delete;

  /// Admits \p R, blocking while the queue is full. \p OnComplete
  /// (optional) fires exactly once with the response for every
  /// admitted request, and never for a Rejected ticket (the rejection
  /// IS the outcome). \returns a Rejected ticket only when the
  /// service is draining or shut down.
  Ticket submit(const OptimizeRequest &R,
                std::function<void(const OptimizeResponse &)> OnComplete =
                    nullptr);

  /// Non-blocking admission: a full queue yields Admission::Rejected
  /// instead of waiting (lookup hits and attaches never consume queue
  /// space, so they always succeed while the service accepts work).
  Ticket trySubmit(const OptimizeRequest &R,
                   std::function<void(const OptimizeResponse &)> OnComplete =
                       nullptr);

  /// Releases the workers of a StartPaused service. Idempotent; a
  /// service constructed with StartPaused = false is already started.
  void start();

  /// Stops admission, waits until every admitted job resolved, then
  /// accepts again. (A paused service is started first — drain would
  /// otherwise never terminate.)
  void drain();

  /// Stops admission permanently: queued-but-unstarted jobs resolve
  /// as Status::Cancelled, running jobs finish, workers exit.
  /// Idempotent.
  void shutdown();

  /// One consistent counter snapshot.
  ServiceStats stats() const;

  /// Whether admissions are currently accepted (false while draining
  /// or after shutdown). Advisory — a submit can still race a drain —
  /// but lets front doors (net::Server) distinguish "service closing"
  /// from "queue full" when mapping a Rejected ticket to a status.
  bool accepting() const;

  /// The deploy-cache key \p R resolves to under \p Defaults — pure;
  /// exposed so offline producers (e.g. Optimizer::autotuneAll-style
  /// pre-population) can target the exact key the service will look
  /// up.
  static std::string requestKey(const OptimizeRequest &R,
                                const core::OptimizeConfig &Defaults);

  unsigned workerCount() const { return Workers; }

private:
  using Callback = std::function<void(const OptimizeResponse &)>;

  struct JobState {
    OptimizeRequest Request;
    std::string Key;
    support::Clock::TimePoint Admitted;
    /// Absolute deadline (from Timeout or DefaultTimeout); nullopt =
    /// none. Mirrored into Cancel and the queue entry.
    std::optional<support::Clock::TimePoint> Deadline;
    /// Cooperative cancellation handle threaded through the Optimizer;
    /// armed (deadline set) before the job is shared with the queue.
    support::CancelToken Cancel;
    /// True for the exact-shape job behind a near-miss response: its
    /// submitter was already answered (Status::Degraded), so it owns
    /// no submitter callback — but later attachers may add theirs.
    bool Background = false;
    std::promise<ResponsePtr> Promise;
    std::shared_future<ResponsePtr> Future;
    std::vector<Callback> Callbacks;
    bool Running = false; ///< Guarded by the service mutex.
  };
  using JobPtr = std::shared_ptr<JobState>;

  Ticket admit(const OptimizeRequest &R, Callback OnComplete,
               bool Blocking);
  void workerLoop();
  void runJob(const JobPtr &Job);
  /// Resolves \p Job without running it (queue shed / shutdown):
  /// builds a response of \p St and routes it through finishJob.
  void resolveUnrun(const JobPtr &Job, OptimizeResponse::Status St,
                    const std::string &Error);
  /// Exact-key load with corrupt-retry: backs off and re-reads while
  /// load() fails but the key is present (deserialize failure — the
  /// injector's cache-load-corrupt site). nullopt = genuine miss or
  /// retries exhausted.
  std::optional<cubin::CubinFile> loadWithRetry(const std::string &Key);
  /// Publishes \p R as \p Job's response: fulfills the future, fires
  /// the callbacks, erases the in-flight entry, updates counters.
  void finishJob(const JobPtr &Job, OptimizeResponse R);
  /// The single copy of the resolution ordering invariant: future
  /// first, then callbacks, both outside the lock; the job stops
  /// being Outstanding only after the last callback returned.
  void publish(const JobPtr &Job, ResponsePtr Resp,
               std::vector<Callback> Cbs);
  /// \p File by value: the hit path moves the freshly loaded cubin
  /// straight into the response (no second deep copy).
  ResponsePtr resolveLookup(const std::string &Key, cubin::CubinFile File,
                            double WallMs);

  /// Cross-process claims (ServiceConfig::CrossProcessClaims).
  bool claimsActive() const {
    return Config.CrossProcessClaims && Deploy != nullptr;
  }
  std::string claimPathFor(const std::string &Key) const;
  /// Claims \p Job's key for this process, or adopts the winner: when
  /// another process holds the claim, polls until either the key
  /// appears in the DeployCache (\p Resp becomes a LookupHit; returns
  /// false) or the claim clears (re-tries the claim; stale claims are
  /// broken). \returns true once this process owns the claim. Runs
  /// inside runJob's try: deadline expiry surfaces as CancelledError.
  bool acquireClaimOrAdopt(const JobPtr &Job, OptimizeResponse &Resp);
  void releaseClaim(const std::string &Path);
  void heartbeatLoop();

  ServiceConfig Config;
  gpusim::Gpu Prototype; ///< Pristine device every job copies.
  std::unique_ptr<triton::DeployCache> Deploy; ///< Null when disabled.
  std::unique_ptr<PolicyStore> Policies;       ///< Null when disabled.
  unsigned Workers;
  support::Clock *Clk; ///< Declared before Queue: its Options use it.

  JobQueue Queue;
  std::unique_ptr<support::ThreadPool> Pool;

  /// Near-miss index over the DeployCache's meta sidecars; guarded by
  /// its own mutex so degraded lookups never contend with the main
  /// admission lock.
  mutable std::mutex IndexMutex;
  DeployIndex Index;

  mutable std::mutex Mutex;
  std::mutex ShutdownMutex; ///< Serializes concurrent shutdown() calls.
  std::condition_variable Quiesced; ///< Signals drain()/shutdown().
  std::unordered_map<std::string, JobPtr> InFlight;
  /// Jobs admitted whose futures/callbacks have not yet fully
  /// resolved. InFlight empties when a job's result is decided;
  /// Outstanding only drops once its waiters were notified — drain()
  /// and shutdown() wait on the latter so no callback can outlive
  /// them.
  uint64_t Outstanding = 0;
  bool Accepting = true;
  bool Started = false;
  bool ShutDown = false;
  ServiceStats Counters; ///< Guarded by Mutex (QueuedNow/RunningNow live).

  /// Cross-process claim state. Held claims are refreshed (mtime
  /// heartbeat) by a dedicated thread on real wall time — file mtimes
  /// are wall-clock, so heartbeats must not route through a FakeClock.
  std::string ClaimToken;
  std::mutex ClaimMutex;
  std::condition_variable ClaimCv;
  std::vector<std::string> HeldClaims; ///< Guarded by ClaimMutex.
  bool StopHeartbeat = false;          ///< Guarded by ClaimMutex.
  std::thread Heartbeat;
};

} // namespace serve
} // namespace cuasmrl

#endif // CUASMRL_SERVE_OPTIMIZATIONSERVICE_H

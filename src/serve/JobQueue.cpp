//===- serve/JobQueue.cpp ----------------------------------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "serve/JobQueue.h"

using namespace cuasmrl;
using namespace cuasmrl::serve;

JobQueue::JobQueue(size_t B) : Bound(B) {}

bool JobQueue::push(Task T, int Priority) {
  std::unique_lock<std::mutex> Lock(Mutex);
  NotFull.wait(Lock, [&] {
    return Closed || Bound == 0 || Heap.size() < Bound;
  });
  if (Closed)
    return false;
  Heap.push(Entry{Priority, NextSeq++, std::move(T)});
  NotEmpty.notify_one();
  return true;
}

bool JobQueue::tryPush(Task T, int Priority) {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Closed || (Bound != 0 && Heap.size() >= Bound))
    return false;
  Heap.push(Entry{Priority, NextSeq++, std::move(T)});
  NotEmpty.notify_one();
  return true;
}

std::optional<JobQueue::Task> JobQueue::pop() {
  std::unique_lock<std::mutex> Lock(Mutex);
  NotEmpty.wait(Lock, [&] { return Closed || !Heap.empty(); });
  if (Heap.empty())
    return std::nullopt; // Closed and drained.
  Task T = std::move(Heap.top().Fn);
  Heap.pop();
  NotFull.notify_one();
  return T;
}

std::vector<JobQueue::Task> JobQueue::close() {
  std::vector<Task> Remaining;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Closed = true;
    Remaining.reserve(Heap.size());
    while (!Heap.empty()) {
      Remaining.push_back(std::move(Heap.top().Fn));
      Heap.pop();
    }
  }
  NotFull.notify_all();
  NotEmpty.notify_all();
  return Remaining;
}

size_t JobQueue::size() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Heap.size();
}

bool JobQueue::closed() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Closed;
}

//===- serve/JobQueue.cpp ----------------------------------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "serve/JobQueue.h"

#include <algorithm>
#include <limits>

using namespace cuasmrl;
using namespace cuasmrl::serve;

JobQueue::JobQueue(size_t B) : JobQueue(Options{B, nullptr,
                                                std::chrono::milliseconds(0),
                                                1}) {}

JobQueue::JobQueue(Options O)
    : Opts(O), Clk(O.ClockSrc ? O.ClockSrc : &support::Clock::real()) {}

bool JobQueue::push(Task T, int Priority,
                    std::optional<support::Clock::TimePoint> Deadline) {
  std::unique_lock<std::mutex> Lock(Mutex);
  NotFull.wait(Lock, [&] {
    return Closed || Opts.Bound == 0 || Entries.size() < Opts.Bound;
  });
  if (Closed)
    return false;
  Entries.push_back(
      Entry{Priority, NextSeq++, Clk->now(), Deadline, std::move(T)});
  NotEmpty.notify_one();
  return true;
}

bool JobQueue::tryPush(Task T, int Priority,
                       std::optional<support::Clock::TimePoint> Deadline) {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Closed || (Opts.Bound != 0 && Entries.size() >= Opts.Bound))
    return false;
  Entries.push_back(
      Entry{Priority, NextSeq++, Clk->now(), Deadline, std::move(T)});
  NotEmpty.notify_one();
  return true;
}

size_t JobQueue::nextIndex(support::Clock::TimePoint Now,
                           TaskFate &Fate) const {
  constexpr size_t Npos = std::numeric_limits<size_t>::max();
  if (Entries.empty())
    return Npos;

  // 1. Shed: the expired entry with the earliest deadline (Seq breaks
  //    ties) pops before any live work, so stale requests leave the
  //    queue at pop speed instead of occupying workers.
  size_t Shed = Npos;
  for (size_t I = 0; I < Entries.size(); ++I) {
    const Entry &E = Entries[I];
    if (!E.Deadline || Now < *E.Deadline)
      continue;
    if (Shed == Npos || *E.Deadline < *Entries[Shed].Deadline ||
        (*E.Deadline == *Entries[Shed].Deadline && E.Seq < Entries[Shed].Seq))
      Shed = I;
  }
  if (Shed != Npos) {
    Fate = TaskFate::Expired;
    return Shed;
  }

  // 2. Max effective priority (base + aging boost), FIFO within.
  auto Effective = [&](const Entry &E) -> int64_t {
    if (Opts.AgingInterval.count() <= 0)
      return E.Priority;
    auto Waited = std::chrono::duration_cast<std::chrono::milliseconds>(
        Now - E.Enqueued);
    int64_t Intervals = Waited.count() / Opts.AgingInterval.count();
    return static_cast<int64_t>(E.Priority) + Intervals * Opts.AgingStep;
  };
  size_t Best = 0;
  int64_t BestPrio = Effective(Entries[0]);
  for (size_t I = 1; I < Entries.size(); ++I) {
    int64_t Prio = Effective(Entries[I]);
    if (Prio > BestPrio ||
        (Prio == BestPrio && Entries[I].Seq < Entries[Best].Seq)) {
      Best = I;
      BestPrio = Prio;
    }
  }
  Fate = TaskFate::Run;
  return Best;
}

std::optional<JobQueue::Popped> JobQueue::pop() {
  std::unique_lock<std::mutex> Lock(Mutex);
  NotEmpty.wait(Lock, [&] { return Closed || !Entries.empty(); });
  if (Entries.empty())
    return std::nullopt; // Closed and drained.
  TaskFate Fate = TaskFate::Run;
  size_t I = nextIndex(Clk->now(), Fate);
  Popped P{std::move(Entries[I].Fn), Fate};
  Entries.erase(Entries.begin() + static_cast<ptrdiff_t>(I));
  NotFull.notify_one();
  return P;
}

std::vector<JobQueue::Task> JobQueue::close() {
  std::vector<Task> Remaining;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Closed = true;
    Remaining.reserve(Entries.size());
    support::Clock::TimePoint Now = Clk->now();
    while (!Entries.empty()) {
      TaskFate Fate = TaskFate::Run;
      size_t I = nextIndex(Now, Fate);
      Remaining.push_back(std::move(Entries[I].Fn));
      Entries.erase(Entries.begin() + static_cast<ptrdiff_t>(I));
    }
  }
  NotFull.notify_all();
  NotEmpty.notify_all();
  return Remaining;
}

size_t JobQueue::size() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Entries.size();
}

bool JobQueue::closed() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Closed;
}

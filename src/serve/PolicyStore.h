//===- serve/PolicyStore.h - Persisted policies for warm-started serving ---===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The generalist-policy checkpoint shelf: a directory of serialized
/// trained policies (core::OptimizeResult::PolicyBlob), each with a
/// `.meta` sidecar carrying the workload identity it was trained on —
/// the same versioned line format the DeployCache's cubin sidecars use
/// — so a cache-miss job can warm-start from the nearest already-
/// trained shape of the same (GpuType, kind) instead of a fresh
/// orthogonal init.
///
/// Layout mirrors triton::DeployCache: `<key>.policy` next to
/// `<key>.policy.meta`, both written with the atomic
/// write-sibling-then-rename protocol (support::atomicWriteFile), so a
/// reader never observes a torn checkpoint and a crashed writer leaves
/// only a sweepable `.tmp.` orphan. Nearest-shape lookup reuses
/// DeployIndex (the log-space shapeDistance with its deterministic key
/// tie-break).
///
/// Thread-safety: every public member may be called concurrently; the
/// in-memory index has its own lock and file I/O happens outside it.
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_SERVE_POLICYSTORE_H
#define CUASMRL_SERVE_POLICYSTORE_H

#include "serve/DeployIndex.h"

#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace cuasmrl {
namespace serve {

/// A directory of (policy blob, workload identity) checkpoints with
/// nearest-shape lookup.
class PolicyStore {
public:
  /// Binds the store to \p Directory (created lazily on first store),
  /// sweeps crash orphans, and rebuilds the nearest-shape index from
  /// the `.policy.meta` sidecars already present — a fresh service
  /// instance warm-starts from everything its predecessor trained.
  explicit PolicyStore(std::string Directory);

  /// Persists \p PolicyBlob and its identity sidecar under \p Key
  /// (atomic rename, last writer wins) and indexes it for nearest().
  /// False when either write failed (the entry is then not indexed —
  /// nearest() never offers a policy that is not actually on disk).
  bool store(const std::string &Key, const std::string &PolicyBlob,
             const DeployedEntry &Meta);

  /// The blob stored under \p Key; nullopt on a miss or unreadable
  /// file. (Blob integrity is the loader's problem:
  /// rl::ActorCritic::loadCompatible rejects malformed checkpoints
  /// without touching the net.)
  std::optional<std::string> load(const std::string &Key) const;

  /// The stored policy nearest to \p Shape with matching (GpuType,
  /// Kind), excluding \p ExcludeKey (the job's own key). \p FromKey,
  /// when non-null, receives the winning key. nullopt when no
  /// candidate exists or its file vanished.
  std::optional<std::string> nearest(const std::string &GpuType,
                                     kernels::WorkloadKind Kind,
                                     const kernels::WorkloadShape &Shape,
                                     const std::string &ExcludeKey,
                                     std::string *FromKey = nullptr) const;

  size_t size() const;

  /// Sorted keys with a parseable identity sidecar.
  std::vector<std::string> keys() const;

private:
  std::string pathFor(const std::string &Key) const;
  std::string metaPathFor(const std::string &Key) const;

  std::string Directory;
  mutable std::mutex IndexMutex;
  DeployIndex Index;
};

} // namespace serve
} // namespace cuasmrl

#endif // CUASMRL_SERVE_POLICYSTORE_H

//===- serve/OptimizationService.cpp -----------------------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "serve/OptimizationService.h"

#include "support/FileLock.h"
#include "support/Logging.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cstdio>
#include <exception>

using namespace cuasmrl;
using namespace cuasmrl::serve;

namespace {

/// Completion callbacks run on service-internal threads (or inside
/// admit() for lookup hits); an escaping exception would leak the
/// Outstanding count or terminate the process via the ThreadPool
/// contract, so it is contained and logged instead — the response
/// itself is already published through the future.
void invokeGuarded(const std::function<void(const OptimizeResponse &)> &Cb,
                   const OptimizeResponse &Resp) {
  try {
    Cb(Resp);
  } catch (const std::exception &E) {
    logWarn(std::string("OptimizationService: completion callback threw: ") +
            E.what());
  } catch (...) {
    logWarn("OptimizationService: completion callback threw");
  }
}

double elapsedMs(const support::Clock &C, support::Clock::TimePoint Since) {
  return std::chrono::duration<double, std::milli>(C.now() - Since).count();
}

/// Exact textual rendering of a double (hexfloat): two configs digest
/// equal iff the values are bit-comparable, with no decimal rounding.
void appendField(std::string &Out, double V) {
  char Buf[48];
  std::snprintf(Buf, sizeof(Buf), "%a,", V);
  Out += Buf;
}
void appendField(std::string &Out, uint64_t V) {
  Out += std::to_string(V);
  Out += ',';
}

void appendMeasure(std::string &Out, const gpusim::MeasureConfig &M) {
  appendField(Out, uint64_t(M.WarmupIters));
  appendField(Out, uint64_t(M.RepeatIters));
  appendField(Out, uint64_t(M.ClearL2BetweenReps));
  appendField(Out, M.NoiseStddev);
  appendField(Out, uint64_t(M.MaxBlocks));
  appendField(Out, M.Seed);
}

/// Digest of every result-relevant OptimizeConfig field. Wall-clock
/// knobs (RolloutWorkers, AutotuneWorkers) are deliberately excluded —
/// the determinism contract makes them irrelevant to the result —
/// as are the runtime-wiring fields the service always controls
/// (SharedCache, PrivateDevice). The stall table IS included (its
/// entries shape the action mask, hence the result): two requests
/// with different tables must never share a job or a deployed cubin.
///
/// TRIPWIRE: when OptimizeConfig (or its nested Ppo/Game/Measure
/// structs) grows a result-relevant field, it MUST be appended here —
/// an omitted field silently aliases distinct deployments to one
/// cache key (wrong cubin served, no error). OptimizeConfig's doc
/// comment points back here.
std::string configDigest(const core::OptimizeConfig &C) {
  std::string Raw;
  Raw.reserve(256);
  for (const auto &[Key, Cycles] : C.Game.Table.entries()) {
    Raw += Key;
    Raw += '=';
    appendField(Raw, uint64_t(Cycles));
  }
  appendField(Raw, C.Ppo.Lr);
  appendField(Raw, C.Ppo.Gamma);
  appendField(Raw, C.Ppo.GaeLambda);
  appendField(Raw, C.Ppo.ClipCoef);
  appendField(Raw, C.Ppo.EntCoef);
  appendField(Raw, C.Ppo.VfCoef);
  appendField(Raw, C.Ppo.MaxGradNorm);
  appendField(Raw, uint64_t(C.Ppo.RolloutLen));
  appendField(Raw, uint64_t(C.Ppo.MiniBatches));
  appendField(Raw, uint64_t(C.Ppo.Epochs));
  appendField(Raw, uint64_t(C.Ppo.TotalSteps));
  appendField(Raw, uint64_t(C.Ppo.NormAdvantage));
  appendField(Raw, uint64_t(C.Ppo.ClipVLoss));
  appendField(Raw, uint64_t(C.Ppo.AnnealLr));
  appendField(Raw, C.Ppo.Seed);
  appendField(Raw, uint64_t(C.Ppo.Channels));
  appendField(Raw, uint64_t(C.Ppo.Hidden));
  appendField(Raw, uint64_t(C.Game.EpisodeLength));
  appendMeasure(Raw, C.Game.Measure);
  appendField(Raw, uint64_t(C.Game.UseActionMasking));
  appendField(Raw, C.Game.InvalidPenalty);
  appendField(Raw, uint64_t(C.Game.CacheMeasurements));
  appendField(Raw, uint64_t(C.Game.RecordTrace));
  appendField(Raw, uint64_t(C.NumEnvs));
  appendField(Raw, uint64_t(C.ProbTestRounds));
  appendMeasure(Raw, C.AutotuneMeasure);
  appendField(Raw, C.AutotuneSeed);
  // The conditioned (generalist) observation format trains a different
  // agent on the same workload, hence a different deployed cubin.
  // (GameConfig::Context itself stays excluded: it is runtime wiring
  // the optimizer derives from the request's own kind/shape/GpuType,
  // all of which already key the deployment.)
  appendField(Raw, uint64_t(C.ConditionEmbedding));
  char Hex[24];
  std::snprintf(Hex, sizeof(Hex), "cfg%016llx",
                static_cast<unsigned long long>(fnv1a64(Raw)));
  return Hex;
}

std::shared_future<ResponsePtr> readyFuture(ResponsePtr Resp) {
  std::promise<ResponsePtr> P;
  P.set_value(std::move(Resp));
  return P.get_future().share();
}

/// Every rejection resolves the ticket's future with a ready
/// Status::Rejected response instead of leaving it invalid — a caller
/// that waits on any ticket's future gets a clean outcome, never a
/// block-forever (or UB) on a defaulted shared_future.
std::shared_future<ResponsePtr> rejectedFuture(std::string Key,
                                               std::string Why,
                                               double WallMs) {
  auto Resp = std::make_shared<OptimizeResponse>();
  Resp->St = OptimizeResponse::Status::Rejected;
  Resp->Key = std::move(Key);
  Resp->Error = std::move(Why);
  Resp->WallMs = WallMs;
  return readyFuture(std::move(Resp));
}

} // namespace

std::string
OptimizationService::requestKey(const OptimizeRequest &R,
                                const core::OptimizeConfig &Defaults) {
  const core::OptimizeConfig &C = R.Config ? *R.Config : Defaults;
  return triton::DeployCache::makeKey(
      R.GpuType, triton::Autotuner::requestKey(R.Kind, R.Shape),
      configDigest(C));
}

OptimizationService::OptimizationService(const gpusim::Gpu &Proto,
                                         ServiceConfig C)
    : Config(std::move(C)), Prototype(Proto),
      Workers(support::ThreadPool::resolveWorkerCount(Config.Workers)),
      Clk(Config.ClockSrc ? Config.ClockSrc : &support::Clock::real()),
      Queue(JobQueue::Options{Config.MaxQueued, Clk, Config.AgingInterval,
                              Config.AgingStep}) {
  if (!Config.DeployDir.empty()) {
    Deploy = std::make_unique<triton::DeployCache>(Config.DeployDir);
    Deploy->setFaultInjector(Config.Faults);
    // Seed the near-miss index from whatever the directory already
    // deploys (meta sidecars); no lock needed before construction ends.
    Index.loadFrom(*Deploy);
  }
  if (!Config.PolicyDir.empty())
    Policies = std::make_unique<PolicyStore>(Config.PolicyDir);
  if (claimsActive()) {
    ClaimToken = support::FileLock::makeToken();
    Heartbeat = std::thread([this] { heartbeatLoop(); });
  }
  Pool = std::make_unique<support::ThreadPool>(Workers);
  if (!Config.StartPaused)
    start();
}

OptimizationService::~OptimizationService() { shutdown(); }

void OptimizationService::start() {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Started || ShutDown)
    return;
  Started = true;
  // The workers are long-running pool tasks: each loops popping jobs
  // until the queue closes. The pool is sized exactly to them, so
  // nothing else may be submitted to it.
  for (unsigned W = 0; W < Workers; ++W)
    Pool->submit([this] { workerLoop(); });
}

void OptimizationService::workerLoop() {
  while (std::optional<JobQueue::Popped> P = Queue.pop()) {
    // Defense in depth: the task lambda already contains every
    // exception (runJob's try spans the whole job body), but a throw
    // escaping here would kill the process via the ThreadPool contract
    // — so the worker loop itself never lets one through.
    try {
      P->Fn(P->Fate);
    } catch (const std::exception &E) {
      logWarn(std::string("OptimizationService: job task escaped: ") +
              E.what());
    } catch (...) {
      logWarn("OptimizationService: job task escaped");
    }
  }
}

Ticket OptimizationService::submit(
    const OptimizeRequest &R,
    std::function<void(const OptimizeResponse &)> OnComplete) {
  return admit(R, std::move(OnComplete), /*Blocking=*/true);
}

Ticket OptimizationService::trySubmit(
    const OptimizeRequest &R,
    std::function<void(const OptimizeResponse &)> OnComplete) {
  return admit(R, std::move(OnComplete), /*Blocking=*/false);
}

ResponsePtr OptimizationService::resolveLookup(const std::string &Key,
                                               cubin::CubinFile File,
                                               double WallMs) {
  auto Resp = std::make_shared<OptimizeResponse>();
  Resp->St = OptimizeResponse::Status::LookupHit;
  Resp->Key = Key;
  Resp->Binary = std::move(File);
  Resp->Persisted = true; // It came from the cache, so it is in it.
  Resp->WallMs = WallMs;
  return Resp;
}

std::optional<cubin::CubinFile>
OptimizationService::loadWithRetry(const std::string &Key) {
  if (!Deploy)
    return std::nullopt;
  for (unsigned Attempt = 1;; ++Attempt) {
    if (std::optional<cubin::CubinFile> File = Deploy->load(Key))
      return File;
    if (!Deploy->contains(Key))
      return std::nullopt; // Genuine miss: nothing to retry.
    // Present but unloadable: a corrupt read (or the injector's
    // cache-load-corrupt site). Back off and re-read.
    if (Attempt >= Config.Retry.MaxAttempts) {
      std::lock_guard<std::mutex> Lock(Mutex);
      ++Counters.RetryExhausted;
      return std::nullopt; // Give up on the lookup: re-optimize.
    }
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      ++Counters.LoadRetries;
    }
    Clk->sleepFor(support::backoffDelay(Config.Retry, Attempt, Config.Seed,
                                        fnv1a64(Key)));
  }
}

void OptimizationService::resolveUnrun(const JobPtr &Job,
                                       OptimizeResponse::Status St,
                                       const std::string &Error) {
  OptimizeResponse Resp;
  Resp.St = St;
  Resp.Key = Job->Key;
  Resp.Error = Error;
  Resp.WallMs = elapsedMs(*Clk, Job->Admitted);
  finishJob(Job, std::move(Resp));
}

Ticket OptimizationService::admit(const OptimizeRequest &R,
                                  Callback OnComplete, bool Blocking) {
  const support::Clock::TimePoint Admitted = Clk->now();
  std::string Key = requestKey(R, Config.Defaults);
  Ticket Tk;
  Tk.Key = Key;

  // Effective deadline: the request's own timeout, else the service
  // default, else none. (A negative timeout yields a deadline already
  // in the past; the queue sheds it on the first pop.)
  std::optional<support::Clock::TimePoint> Deadline;
  const std::chrono::milliseconds Timeout =
      R.Timeout.count() != 0 ? R.Timeout : Config.DefaultTimeout;
  if (Timeout.count() != 0)
    Deadline = Admitted + Timeout;

  // 1. Deploy-cache lookup (§4.2: "it invokes a lookup process instead
  //    of training"). The load runs before any lock is taken — slow
  //    filesystem I/O must never stall admissions or job completion —
  //    and a miss costs one failed open. An unloadable-but-present key
  //    (corrupt read) is retried under the service policy, then falls
  //    through to the optimize path instead of failing the request.
  std::optional<cubin::CubinFile> Deployed = loadWithRetry(Key);

  // Near-miss preload: on a miss, find and load the nearest deployed
  // sibling before taking the lock (same no-I/O-under-lock rule).
  std::optional<std::pair<std::string, cubin::CubinFile>> Near;
  if (!Deployed && Deploy && Config.EnableNearMiss && R.AllowDegraded) {
    std::string NearKey;
    {
      std::lock_guard<std::mutex> IdxLock(IndexMutex);
      if (const DeployedEntry *E =
              Index.nearest(R.GpuType, R.Kind, R.Shape, Key))
        NearKey = E->Key;
    }
    if (!NearKey.empty())
      if (std::optional<cubin::CubinFile> File = Deploy->load(NearKey))
        Near.emplace(std::move(NearKey), *std::move(File));
  }

  std::unique_lock<std::mutex> Lock(Mutex);
  if (!Accepting) {
    ++Counters.Rejected;
    Lock.unlock();
    Tk.Response = rejectedFuture(Key, "service is draining or shut down",
                                 elapsedMs(*Clk, Admitted));
    return Tk;
  }

  if (Deployed) {
    // The request stays Outstanding until its callback returned, so
    // drain() and shutdown() never outrun a hit callback either.
    ++Counters.Submitted;
    ++Counters.LookupHits;
    ++Outstanding;
    Lock.unlock();
    ResponsePtr Resp =
        resolveLookup(Key, *std::move(Deployed), elapsedMs(*Clk, Admitted));
    if (OnComplete)
      invokeGuarded(OnComplete, *Resp);
    {
      std::lock_guard<std::mutex> StatLock(Mutex);
      --Outstanding;
      Quiesced.notify_all();
    }
    Tk.How = Admission::LookupHit;
    Tk.Response = readyFuture(std::move(Resp));
    return Tk;
  }

  // 2. Single-flight attach: an identical key is already queued or
  //    running — share its job instead of re-optimizing (the service-
  //    level mirror of the Autotuner/MeasurementCache single-run-per-
  //    key guarantee). Attaching beats degrading: the exact answer is
  //    already on its way.
  auto It = InFlight.find(Key);
  if (It != InFlight.end()) {
    JobPtr Job = It->second;
    if (OnComplete)
      Job->Callbacks.push_back(std::move(OnComplete));
    ++Counters.Submitted;
    ++Counters.Merged;
    Tk.How = Admission::Attached;
    Tk.Response = Job->Future;
    return Tk;
  }

  // 3./4. A new job either way. A near-miss serves the nearest
  // deployed sibling to the submitter right now and runs the exact-
  // shape job in the background; otherwise the submitter waits on the
  // job itself.
  auto Job = std::make_shared<JobState>();
  Job->Request = R;
  Job->Key = Key;
  Job->Admitted = Admitted;
  Job->Background = Near.has_value();
  if (!Job->Background) {
    // A background upgrade carries no deadline: its submitter already
    // holds the degraded answer, so the upgrade should land no matter
    // how long it takes.
    Job->Deadline = Deadline;
    if (Deadline)
      Job->Cancel.setDeadline(*Clk, *Deadline);
  }
  Job->Future = Job->Promise.get_future().share();
  const bool HasOwnCallback =
      static_cast<bool>(OnComplete) && !Job->Background;
  if (HasOwnCallback)
    Job->Callbacks.push_back(OnComplete);
  InFlight.emplace(Key, Job);
  ++Outstanding;
  ++Counters.Submitted;
  ++Counters.Enqueued;
  ++Counters.QueuedNow;
  if (Job->Background) {
    ++Counters.DegradedHits;
    ++Outstanding; // Once more, for the degraded answer's window below.
  }
  Lock.unlock();

  // The push happens outside the service lock: a blocking push parks
  // this thread until a worker pops (backpressure), and holding the
  // lock there would deadlock the workers' finishJob().
  JobQueue::Task Task = [this, Job](TaskFate Fate) {
    switch (Fate) {
    case TaskFate::Run:
      runJob(Job);
      break;
    case TaskFate::Cancelled:
      resolveUnrun(Job, OptimizeResponse::Status::Cancelled,
                   "service shut down before the job ran");
      break;
    case TaskFate::Expired:
      resolveUnrun(Job, OptimizeResponse::Status::DeadlineExceeded,
                   "deadline expired before the job started");
      break;
    }
  };
  bool Pushed = Blocking ? Queue.push(Task, R.Priority, Job->Deadline)
                         : Queue.tryPush(Task, R.Priority, Job->Deadline);

  if (Job->Background) {
    if (!Pushed) {
      // Queue full or racing shutdown: the degraded answer still
      // serves (that is the whole point of degradation under
      // pressure); only the background upgrade is abandoned. Resolve
      // its future as Cancelled for any attacher that slipped in.
      OptimizeResponse Bg;
      Bg.St = OptimizeResponse::Status::Cancelled;
      Bg.Key = Key;
      Bg.Error =
          Blocking ? "service shut down during admission" : "queue full";
      Bg.WallMs = elapsedMs(*Clk, Admitted);
      std::vector<Callback> Cbs;
      {
        std::lock_guard<std::mutex> StatLock(Mutex);
        InFlight.erase(Key);
        Cbs = std::move(Job->Callbacks);
        --Counters.QueuedNow;
        --Counters.Enqueued;
      }
      publish(Job, std::make_shared<const OptimizeResponse>(std::move(Bg)),
              std::move(Cbs));
    }
    auto Resp = std::make_shared<OptimizeResponse>();
    Resp->St = OptimizeResponse::Status::Degraded;
    Resp->Key = Key;
    Resp->Binary = std::move(Near->second);
    Resp->DegradedFrom = std::move(Near->first);
    Resp->Persisted = false; // The exact key is not deployed (yet).
    Resp->WallMs = elapsedMs(*Clk, Admitted);
    ResponsePtr Shared = std::move(Resp);
    if (OnComplete)
      invokeGuarded(OnComplete, *Shared);
    {
      std::lock_guard<std::mutex> StatLock(Mutex);
      --Outstanding;
      Quiesced.notify_all();
    }
    Tk.How = Admission::NearMiss;
    Tk.Response = readyFuture(std::move(Shared));
    return Tk;
  }

  if (!Pushed) {
    // Queue full (trySubmit) or closed by a racing shutdown. The job
    // was visible for attaching for a moment, so resolve its future
    // as Cancelled for any attacher — but not for the submitter, who
    // learns the outcome from the Rejected ticket (a rejected
    // admission never fires the submitter's own callback).
    OptimizeResponse Resp;
    Resp.St = OptimizeResponse::Status::Cancelled;
    Resp.Error =
        Blocking ? "service shut down during admission" : "queue full";
    Resp.Key = Key;
    Resp.WallMs = elapsedMs(*Clk, Admitted);
    std::vector<Callback> Cbs;
    {
      std::lock_guard<std::mutex> StatLock(Mutex);
      InFlight.erase(Key);
      Cbs = std::move(Job->Callbacks);
      if (HasOwnCallback) // (A copy of OnComplete went in first.)
        Cbs.erase(Cbs.begin());
      --Counters.QueuedNow;
      --Counters.Submitted;
      --Counters.Enqueued;
      ++Counters.Rejected;
    }
    publish(Job, std::make_shared<const OptimizeResponse>(std::move(Resp)),
            std::move(Cbs));
    Tk.How = Admission::Rejected;
    Tk.Response = rejectedFuture(
        Key, Blocking ? "service shut down during admission" : "queue full",
        elapsedMs(*Clk, Admitted));
    return Tk;
  }
  Tk.How = Admission::Enqueued;
  Tk.Response = Job->Future;
  return Tk;
}

void OptimizationService::runJob(const JobPtr &Job) {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    --Counters.QueuedNow;
    ++Counters.RunningNow;
    Job->Running = true;
  }

  const std::string &Key = Job->Key;
  support::FaultInjector *Faults = Config.Faults;
  OptimizeResponse Resp;
  Resp.Key = Key;
  // Claim bookkeeping spans the retry loop: a transient retry re-runs
  // the try body but must neither re-claim a key it already holds nor
  // re-count the optimize run.
  bool Claimed = false;
  bool RunCounted = false;
  // The whole job body — optimizer construction included — runs under
  // the try: anything a job throws becomes a Failed response on that
  // key only, never a dead worker (the ThreadPool submit() contract)
  // and never a stuck single-flight entry.
  for (unsigned Attempt = 1;; ++Attempt) {
    try {
      // Cross-process single-flight first: claim the key, or adopt
      // the winner another process deployed while we waited on its
      // claim — an adopted job is a lookup, not an optimize run.
      if (claimsActive() && !Claimed) {
        if (!acquireClaimOrAdopt(Job, Resp))
          break; // Resp is a LookupHit on the other process's cubin.
        Claimed = true;
      }
      if (!RunCounted) {
        std::lock_guard<std::mutex> Lock(Mutex);
        ++Counters.OptimizeRuns;
        RunCounted = true;
      }
      if (Faults) {
        // Injected slowness next: a planned delay models a job that
        // outlives its deadline — which the checkpoint right after
        // then trips, at any worker count, because the job's own
        // sleep is what moves the (fake) clock past its deadline.
        if (uint64_t Delay = Faults->delayMs("job-slow:" + Key))
          Clk->sleepFor(std::chrono::milliseconds(Delay));
      }
      Job->Cancel.checkpoint();
      if (Faults) {
        if (Faults->shouldFail("job-transient:" + Key))
          throw support::TransientError("injected transient job fault");
        if (Faults->shouldFail("job-throw:" + Key))
          throw std::runtime_error("injected job fault");
      }

      // The determinism contract: a private pristine device per job
      // and a data stream derived purely from (service seed, request
      // key) — the response never depends on which worker ran the
      // job, what ran before it, or how many workers exist. Warm
      // starts add the policy-store contents at job start to that
      // function (see ServiceConfig::PolicyDir).
      const core::OptimizeConfig &EffConfig =
          Job->Request.Config ? *Job->Request.Config : Config.Defaults;
      const core::Optimizer Opt(EffConfig);
      gpusim::Gpu Local(Prototype);
      Rng DataRng(mixSeed(Config.Seed, fnv1a64(Key)));

      // Warm start: the stored policy for this exact key (e.g. the
      // cubin store failed last time, or the key was trained under
      // PersistPolicies on another instance), else the nearest trained
      // shape of the same (GpuType, kind).
      std::optional<std::string> WarmBlob;
      std::string WarmKey;
      if (Policies) {
        if ((WarmBlob = Policies->load(Key)))
          WarmKey = Key;
        else
          WarmBlob = Policies->nearest(Job->Request.GpuType,
                                       Job->Request.Kind,
                                       Job->Request.Shape, Key, &WarmKey);
      }

      core::OptimizeResult Result = Opt.optimize(
          Local, Job->Request.Kind, Job->Request.Shape, DataRng,
          &Job->Cancel, WarmBlob ? &*WarmBlob : nullptr,
          Job->Request.GpuType);
      Resp.St = OptimizeResponse::Status::Optimized;
      Resp.Result = std::move(Result);
      Resp.Binary = Resp.Result.Kernel.Binary;
      if (Resp.Result.WarmStartTensors > 0)
        Resp.WarmStartedFrom = std::move(WarmKey);
      break;
    } catch (const support::CancelledError &) {
      Resp.St = OptimizeResponse::Status::DeadlineExceeded;
      Resp.Error = "deadline exceeded (cancelled at a checkpoint)";
      break;
    } catch (const support::TransientError &E) {
      if (Attempt >= Config.Retry.MaxAttempts) {
        {
          std::lock_guard<std::mutex> Lock(Mutex);
          ++Counters.RetryExhausted;
        }
        Resp.St = OptimizeResponse::Status::Failed;
        Resp.Error =
            std::string("transient failure, retries exhausted: ") + E.what();
        break;
      }
      {
        std::lock_guard<std::mutex> Lock(Mutex);
        ++Counters.JobRetries;
      }
      Clk->sleepFor(support::backoffDelay(Config.Retry, Attempt,
                                          Config.Seed, fnv1a64(Key)));
    } catch (const std::exception &E) {
      Resp.St = OptimizeResponse::Status::Failed;
      Resp.Error = E.what();
      break;
    } catch (...) {
      Resp.St = OptimizeResponse::Status::Failed;
      Resp.Error = "unknown exception";
      break;
    }
  }

  // §4.2 write-back: only a verified winner is deployable. Store
  // failures retry under the service policy; a final failure is
  // surfaced (Persisted stays false, stats count it) — never silently
  // dropped.
  if (Resp.St == OptimizeResponse::Status::Optimized && Deploy &&
      Resp.Result.AutotuneValid && Resp.Result.Verified) {
    for (unsigned Attempt = 1;; ++Attempt) {
      if (Deploy->store(Key, Resp.Binary)) {
        Resp.Persisted = true;
        break;
      }
      if (Attempt >= Config.Retry.MaxAttempts) {
        std::lock_guard<std::mutex> Lock(Mutex);
        ++Counters.RetryExhausted;
        break;
      }
      {
        std::lock_guard<std::mutex> Lock(Mutex);
        ++Counters.StoreRetries;
      }
      Clk->sleepFor(support::backoffDelay(Config.Retry, Attempt,
                                          Config.Seed, fnv1a64(Key)));
    }
    if (Resp.Persisted) {
      // Publish the shape sidecar so this key can serve future
      // near-miss lookups (and survive a service restart).
      DeployedEntry Entry;
      Entry.GpuType = Job->Request.GpuType;
      Entry.Kind = Job->Request.Kind;
      Entry.Shape = Job->Request.Shape;
      Entry.Key = Key;
      Deploy->storeMeta(Key, encodeDeployMeta(Entry));
      std::lock_guard<std::mutex> IdxLock(IndexMutex);
      Index.add(std::move(Entry));
    } else {
      logWarn("OptimizationService: failed to persist winner for key '" +
              Key + "'");
    }
  }

  // Policy write-back: every successfully trained policy is a future
  // warm-start source — even when the schedule failed verification
  // (the policy's quality is independent of one schedule's
  // probabilistic test).
  if (Resp.St == OptimizeResponse::Status::Optimized && Policies &&
      Config.PersistPolicies && Resp.Result.AutotuneValid &&
      !Resp.Result.PolicyBlob.empty()) {
    DeployedEntry Entry;
    Entry.GpuType = Job->Request.GpuType;
    Entry.Kind = Job->Request.Kind;
    Entry.Shape = Job->Request.Shape;
    Entry.Key = Key;
    const bool Stored = Policies->store(Key, Resp.Result.PolicyBlob, Entry);
    if (!Stored)
      logWarn("OptimizationService: failed to persist policy for key '" +
              Key + "'");
    std::lock_guard<std::mutex> Lock(Mutex);
    if (Stored)
      ++Counters.PolicyStores;
    else
      ++Counters.PolicyStoreFailures;
  }

  if (Resp.St == OptimizeResponse::Status::Optimized &&
      Resp.Result.WarmStartTensors > 0) {
    std::lock_guard<std::mutex> Lock(Mutex);
    ++Counters.WarmStarts;
    Counters.WarmStartTensors += Resp.Result.WarmStartTensors;
  }

  // The claim releases only after the persist attempt: a waiter that
  // sees it clear must find either the deployed cubin (adopt) or no
  // claim at all (re-claim and optimize itself).
  if (Claimed)
    releaseClaim(claimPathFor(Key));

  Resp.WallMs = elapsedMs(*Clk, Job->Admitted);
  finishJob(Job, std::move(Resp));
}

std::string
OptimizationService::claimPathFor(const std::string &Key) const {
  return Config.DeployDir + "/.claims/" + Key + ".lock";
}

bool OptimizationService::acquireClaimOrAdopt(const JobPtr &Job,
                                              OptimizeResponse &Resp) {
  const std::string Path = claimPathFor(Job->Key);
  bool WaitCounted = false;
  while (true) {
    // The winner may have deployed the key between this job's
    // admission-time lookup and now (or while we polled its claim):
    // adopt its cubin instead of re-optimizing.
    if (Deploy->contains(Job->Key)) {
      if (std::optional<cubin::CubinFile> File = loadWithRetry(Job->Key)) {
        Resp.St = OptimizeResponse::Status::LookupHit;
        Resp.Binary = *std::move(File);
        Resp.Persisted = true;
        std::lock_guard<std::mutex> Lock(Mutex);
        ++Counters.ClaimHits;
        return false;
      }
    }
    if (support::FileLock::tryClaim(Path, ClaimToken)) {
      std::lock_guard<std::mutex> Lock(ClaimMutex);
      HeldClaims.push_back(Path);
      return true;
    }
    // Somebody else owns the claim. Break it when its heartbeat went
    // stale (crashed owner), otherwise wait our turn.
    if (support::FileLock::breakStale(Path, Config.ClaimStaleAfter)) {
      std::lock_guard<std::mutex> Lock(Mutex);
      ++Counters.ClaimBreaks;
      continue;
    }
    if (!WaitCounted) {
      WaitCounted = true;
      std::lock_guard<std::mutex> Lock(Mutex);
      ++Counters.ClaimWaits;
    }
    // Deadline expiry while parked on another process's claim surfaces
    // here as CancelledError — runJob's catch turns it into a
    // DeadlineExceeded response exactly like a mid-job expiry.
    Job->Cancel.checkpoint();
    Clk->sleepFor(Config.ClaimPollInterval);
  }
}

void OptimizationService::releaseClaim(const std::string &Path) {
  {
    std::lock_guard<std::mutex> Lock(ClaimMutex);
    HeldClaims.erase(std::remove(HeldClaims.begin(), HeldClaims.end(), Path),
                     HeldClaims.end());
  }
  support::FileLock::release(Path, ClaimToken);
}

void OptimizationService::heartbeatLoop() {
  std::chrono::milliseconds Interval = Config.ClaimHeartbeat.count() > 0
                                           ? Config.ClaimHeartbeat
                                           : Config.ClaimStaleAfter / 4;
  if (Interval.count() <= 0)
    Interval = std::chrono::milliseconds(1);
  std::unique_lock<std::mutex> Lock(ClaimMutex);
  while (!StopHeartbeat) {
    ClaimCv.wait_for(Lock, Interval, [this] { return StopHeartbeat; });
    if (StopHeartbeat)
      return;
    std::vector<std::string> Held = HeldClaims;
    Lock.unlock();
    for (const std::string &Path : Held)
      support::FileLock::refresh(Path, ClaimToken);
    Lock.lock();
  }
}

void OptimizationService::publish(const JobPtr &Job, ResponsePtr Resp,
                                  std::vector<Callback> Cbs) {
  // Future first (waiters see the result before callbacks run), then
  // the callbacks — both outside the lock so neither can deadlock the
  // service. Only then does the job stop being Outstanding: drain()
  // and shutdown() must never return while a callback is in flight.
  Job->Promise.set_value(Resp);
  for (Callback &Cb : Cbs)
    invokeGuarded(Cb, *Resp);
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    --Outstanding;
    Quiesced.notify_all();
  }
}

void OptimizationService::finishJob(const JobPtr &Job, OptimizeResponse R) {
  auto Resp = std::make_shared<const OptimizeResponse>(std::move(R));
  std::vector<Callback> Cbs;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    InFlight.erase(Job->Key);
    Cbs = std::move(Job->Callbacks);
    if (Job->Running)
      --Counters.RunningNow;
    else
      --Counters.QueuedNow;
    Counters.TotalJobWallMs += Resp->WallMs;
    switch (Resp->St) {
    case OptimizeResponse::Status::Optimized:
      ++Counters.Completed;
      Counters.TrainingUpdates += Resp->Result.Training.size();
      Counters.Counters += Resp->Result.RolloutCounters;
      if (Resp->Persisted) {
        ++Counters.PersistStores;
        if (Job->Background)
          ++Counters.NearMissUpgrades; // The degraded key is now exact.
      } else if (Deploy && Resp->Result.AutotuneValid &&
                 Resp->Result.Verified) {
        ++Counters.PersistFailures; // Attempted and dropped.
      }
      break;
    case OptimizeResponse::Status::Failed:
      ++Counters.Failed;
      break;
    case OptimizeResponse::Status::Cancelled:
      ++Counters.Cancelled;
      break;
    case OptimizeResponse::Status::DeadlineExceeded:
      ++Counters.DeadlineExceeded;
      // Job->Running distinguishes shed-in-queue from cancelled-at-a-
      // checkpoint; their SUM is worker-count invariant (which side of
      // the split a given expiry lands on depends on pop timing).
      if (Job->Running)
        ++Counters.ExpiredMidJob;
      else
        ++Counters.ExpiredInQueue;
      break;
    case OptimizeResponse::Status::LookupHit:
      // Reached only via cross-process claim adoption (accounted in
      // ClaimHits); front-door hits resolve inside admit().
      break;
    case OptimizeResponse::Status::Degraded:
      break; // Immediate admissions never reach finishJob.
    case OptimizeResponse::Status::Rejected:
      break; // Rejections resolve inside admit(); never a job.
    }
  }
  publish(Job, std::move(Resp), std::move(Cbs));
}

void OptimizationService::drain() {
  start(); // A paused service would never quiesce.
  std::unique_lock<std::mutex> Lock(Mutex);
  if (ShutDown)
    return;
  Accepting = false;
  Quiesced.wait(Lock,
                [this] { return InFlight.empty() && Outstanding == 0; });
  if (!ShutDown) // A shutdown() racing the wait wins: stay closed.
    Accepting = true;
}

void OptimizationService::shutdown() {
  // Serialized: a second concurrent shutdown() (or the destructor
  // after an explicit one) blocks until the first completes, then
  // runs through the already-quiesced state as a no-op.
  std::lock_guard<std::mutex> ShutdownLock(ShutdownMutex);
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Accepting = false;
    ShutDown = true;
  }
  // Close the queue: workers wake, drain nothing further, and exit;
  // never-started jobs come back for explicit cancellation so every
  // outstanding future resolves.
  std::vector<JobQueue::Task> Unstarted = Queue.close();
  for (JobQueue::Task &Task : Unstarted)
    Task(TaskFate::Cancelled);
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    Quiesced.wait(Lock,
                  [this] { return InFlight.empty() && Outstanding == 0; });
  }
  Pool.reset(); // Joins the (now exiting) worker loops.
  if (Heartbeat.joinable()) {
    // After the pool joined no job holds a claim; stop the heartbeat.
    {
      std::lock_guard<std::mutex> Lock(ClaimMutex);
      StopHeartbeat = true;
    }
    ClaimCv.notify_all();
    Heartbeat.join();
  }
}

bool OptimizationService::accepting() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Accepting;
}

ServiceStats OptimizationService::stats() const {
  // The directory enumeration happens before taking the service lock:
  // a slow filesystem must not stall admissions or job completion.
  uint64_t Deployed = Deploy ? Deploy->keys().size() : 0;
  uint64_t Fired = Config.Faults ? Config.Faults->totalFired() : 0;
  std::lock_guard<std::mutex> Lock(Mutex);
  ServiceStats Snapshot = Counters;
  Snapshot.DeployedKeys = Deployed;
  Snapshot.FaultsInjected = Fired;
  return Snapshot;
}

//===- serve/DeployIndex.h - Near-miss lookup over deployed shapes --------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The graceful-degradation index: an in-memory map of what the
/// DeployCache holds, keyed (GpuType, workload kind) with the request
/// shape attached, so a cache miss can be served immediately from the
/// nearest deployed shape of the same kind (Status::Degraded) while
/// the exact-shape job trains in the background — the ROADMAP's
/// shape-interpolating lookup.
///
/// Shape metadata travels as a `.meta` sidecar next to each cubin
/// (DeployCache::storeMeta), so a fresh service instance rebuilds the
/// index from the directory alone; entries without a sidecar (e.g.
/// produced by Optimizer::autotuneAll) simply never serve as near-miss
/// sources.
///
/// Distance is the sum of squared log-ratios over every shape field —
/// scale-relative, so (Rows 64 -> 96) is nearer than (Rows 64 -> 1024)
/// regardless of absolute magnitude — with a deterministic key
/// tie-break so nearest() never depends on insertion order.
///
/// Thread-safety: none; the owner locks (the service guards its index
/// with its own mutex).
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_SERVE_DEPLOYINDEX_H
#define CUASMRL_SERVE_DEPLOYINDEX_H

#include "kernels/Workload.h"

#include <optional>
#include <string>
#include <vector>

namespace cuasmrl {
namespace triton {
class DeployCache;
} // namespace triton
namespace serve {

/// One deployed cubin the index can serve as a near-miss source.
struct DeployedEntry {
  std::string GpuType;
  kernels::WorkloadKind Kind = kernels::WorkloadKind::Softmax;
  kernels::WorkloadShape Shape;
  std::string Key;
};

/// Sidecar text for one entry (versioned line format).
std::string encodeDeployMeta(const DeployedEntry &Entry);

/// Parses sidecar text produced by encodeDeployMeta; \p Key is the
/// cache key the sidecar sits next to. nullopt on malformed input.
std::optional<DeployedEntry> parseDeployMeta(const std::string &Text,
                                             std::string Key);

/// The (GpuType, kind) -> deployed shapes index.
class DeployIndex {
public:
  /// Inserts \p Entry, replacing any entry with the same Key.
  void add(DeployedEntry Entry);

  /// Rebuilds from \p Cache: every key with a parseable meta sidecar.
  void loadFrom(const triton::DeployCache &Cache);

  /// The nearest deployed shape with matching (GpuType, Kind),
  /// excluding \p ExcludeKey (the exact key that just missed — it may
  /// appear in the index while its file write races). Null when no
  /// candidate exists.
  const DeployedEntry *nearest(const std::string &GpuType,
                               kernels::WorkloadKind Kind,
                               const kernels::WorkloadShape &Shape,
                               const std::string &ExcludeKey) const;

  size_t size() const { return Entries.size(); }

  /// Log-space distance between two shapes (see the file comment).
  static double shapeDistance(const kernels::WorkloadShape &A,
                              const kernels::WorkloadShape &B);

private:
  std::vector<DeployedEntry> Entries;
};

} // namespace serve
} // namespace cuasmrl

#endif // CUASMRL_SERVE_DEPLOYINDEX_H

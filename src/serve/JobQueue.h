//===- serve/JobQueue.h - Bounded priority job queue -------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The admission queue of the optimization service: a bounded,
/// closable priority queue of tasks. Higher priority pops first;
/// within one priority the queue is FIFO (a monotonic sequence number
/// breaks ties), so equal-priority requests are served in admission
/// order.
///
/// Thread-safety contract: every member may be called concurrently
/// from any number of producer and consumer threads. push() provides
/// the service's backpressure — it blocks while the queue is at its
/// bound and fails (returns false) only once the queue is closed.
/// close() is idempotent; it wakes every blocked producer and
/// consumer and hands the never-started tasks back to the caller so
/// their requesters can be failed explicitly (the queue never drops a
/// task silently).
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_SERVE_JOBQUEUE_H
#define CUASMRL_SERVE_JOBQUEUE_H

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <queue>
#include <vector>

namespace cuasmrl {
namespace serve {

/// Bounded priority queue of service jobs.
class JobQueue {
public:
  /// A queued unit of work. Consumers invoke it with Cancelled =
  /// false; tasks returned by close() are invoked (by the closer) with
  /// Cancelled = true so every task's requesters resolve exactly once.
  using Task = std::function<void(bool Cancelled)>;

  /// \p Bound caps queued (not yet popped) tasks; 0 = unbounded.
  explicit JobQueue(size_t Bound = 0);

  /// Enqueues \p T, blocking while the queue is full. \returns false
  /// (without enqueueing) once the queue is closed.
  bool push(Task T, int Priority);

  /// Non-blocking push. \returns false when the queue is full or
  /// closed.
  bool tryPush(Task T, int Priority);

  /// Pops the highest-priority task, blocking while the queue is
  /// empty. \returns std::nullopt once the queue is closed and
  /// drained (the consumer's signal to exit).
  std::optional<Task> pop();

  /// Closes the queue: subsequent pushes fail, blocked producers and
  /// consumers wake, and every task that was never popped is returned
  /// in pop order for explicit cancellation. Idempotent (later calls
  /// return an empty vector).
  std::vector<Task> close();

  /// Queued (not yet popped) task count.
  size_t size() const;

  bool closed() const;

private:
  struct Entry {
    int Priority;
    uint64_t Seq;
    /// mutable so pop()/close() can move the task out from under
    /// priority_queue::top()'s const reference (the ordering fields
    /// are never mutated, so heap invariants hold).
    mutable Task Fn;
  };
  struct EntryOrder {
    bool operator()(const Entry &A, const Entry &B) const {
      if (A.Priority != B.Priority)
        return A.Priority < B.Priority; // Max-heap on priority.
      return A.Seq > B.Seq;             // FIFO within a priority.
    }
  };

  mutable std::mutex Mutex;
  std::condition_variable NotFull;  ///< Signals blocked producers.
  std::condition_variable NotEmpty; ///< Signals blocked consumers.
  std::priority_queue<Entry, std::vector<Entry>, EntryOrder> Heap;
  size_t Bound;
  uint64_t NextSeq = 0;
  bool Closed = false;
};

} // namespace serve
} // namespace cuasmrl

#endif // CUASMRL_SERVE_JOBQUEUE_H

//===- serve/JobQueue.h - Bounded priority job queue -------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The admission queue of the optimization service: a bounded,
/// closable priority queue of tasks with deadlines and priority aging.
/// Higher priority pops first; within one priority the queue is FIFO
/// (a monotonic sequence number breaks ties), so equal-priority
/// requests are served in admission order. Two robustness features sit
/// on top of the plain ordering:
///
///  - Expired-entry shedding: an entry whose deadline passed pops
///    before everything else (earliest deadline first), tagged
///    TaskFate::Expired, so a worker resolves it immediately as
///    DeadlineExceeded instead of burning minutes of optimization on a
///    request nobody is waiting for.
///  - Priority aging: with Options::AgingInterval set, an entry's
///    effective priority grows by AgingStep per interval spent queued,
///    so a steady stream of high-priority work cannot starve
///    low-priority requests forever (the ROADMAP's aging item).
///
/// Both features read Options::ClockSrc, so tests drive them with a
/// FakeClock. Entries are kept in a flat vector and pop() scans it:
/// aging makes priorities drift over time, which rules out a static
/// heap, and service queues are short (bounded by admission
/// backpressure) so the O(n) scan is noise next to a single optimize
/// job.
///
/// Thread-safety contract: every member may be called concurrently
/// from any number of producer and consumer threads. push() provides
/// the service's backpressure — it blocks while the queue is at its
/// bound and fails (returns false) only once the queue is closed.
/// close() is idempotent; it wakes every blocked producer and
/// consumer and hands the never-started tasks back to the caller so
/// their requesters can be failed explicitly (the queue never drops a
/// task silently).
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_SERVE_JOBQUEUE_H
#define CUASMRL_SERVE_JOBQUEUE_H

#include "support/Clock.h"

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <vector>

namespace cuasmrl {
namespace serve {

/// Why a task is being invoked.
enum class TaskFate {
  Run,       ///< Popped normally: execute the job.
  Cancelled, ///< Queue closed before the job started (shutdown).
  Expired,   ///< Deadline passed while queued: shed, don't run.
};

/// Bounded priority queue of service jobs.
class JobQueue {
public:
  /// A queued unit of work. Consumers invoke a popped task with the
  /// fate pop() returned; tasks returned by close() are invoked (by
  /// the closer) with TaskFate::Cancelled — either way every task's
  /// requesters resolve exactly once.
  using Task = std::function<void(TaskFate)>;

  /// What pop() hands a consumer.
  struct Popped {
    Task Fn;
    TaskFate Fate = TaskFate::Run;
  };

  struct Options {
    /// Caps queued (not yet popped) tasks; 0 = unbounded.
    size_t Bound = 0;
    /// Deadline/aging time source; null = support::Clock::real().
    support::Clock *ClockSrc = nullptr;
    /// Aging cadence; 0 disables aging.
    std::chrono::milliseconds AgingInterval{0};
    /// Effective-priority boost per interval queued.
    int AgingStep = 1;
  };

  /// \p Bound caps queued (not yet popped) tasks; 0 = unbounded.
  explicit JobQueue(size_t Bound = 0);
  explicit JobQueue(Options O);

  /// Enqueues \p T, blocking while the queue is full. \returns false
  /// (without enqueueing) once the queue is closed. A \p Deadline in
  /// the past is accepted — it pops first, as Expired.
  bool push(Task T, int Priority,
            std::optional<support::Clock::TimePoint> Deadline =
                std::nullopt);

  /// Non-blocking push. \returns false when the queue is full or
  /// closed.
  bool tryPush(Task T, int Priority,
               std::optional<support::Clock::TimePoint> Deadline =
                   std::nullopt);

  /// Pops the next task, blocking while the queue is empty: any
  /// expired entry first (earliest deadline, then FIFO), tagged
  /// Expired; otherwise the highest effective priority (base priority
  /// plus aging boost), FIFO within equals, tagged Run. \returns
  /// std::nullopt once the queue is closed and drained (the consumer's
  /// signal to exit).
  std::optional<Popped> pop();

  /// Closes the queue: subsequent pushes fail, blocked producers and
  /// consumers wake, and every task that was never popped is returned
  /// in pop order for explicit cancellation. Idempotent (later calls
  /// return an empty vector).
  std::vector<Task> close();

  /// Queued (not yet popped) task count.
  size_t size() const;

  bool closed() const;

private:
  struct Entry {
    int Priority;
    uint64_t Seq;
    support::Clock::TimePoint Enqueued;
    std::optional<support::Clock::TimePoint> Deadline;
    Task Fn;
  };

  /// Index of the entry pop() would take at \p Now, or npos when
  /// empty. Caller holds the mutex.
  size_t nextIndex(support::Clock::TimePoint Now, TaskFate &Fate) const;

  mutable std::mutex Mutex;
  std::condition_variable NotFull;  ///< Signals blocked producers.
  std::condition_variable NotEmpty; ///< Signals blocked consumers.
  std::vector<Entry> Entries;
  Options Opts;
  support::Clock *Clk; ///< Resolved ClockSrc (never null).
  uint64_t NextSeq = 0;
  bool Closed = false;
};

} // namespace serve
} // namespace cuasmrl

#endif // CUASMRL_SERVE_JOBQUEUE_H

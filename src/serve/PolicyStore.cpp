//===- serve/PolicyStore.cpp -------------------------------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "serve/PolicyStore.h"

#include "support/AtomicFile.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

using namespace cuasmrl;
using namespace cuasmrl::serve;

namespace {

const char PolicyExt[] = ".policy";

std::optional<std::string> readFile(const std::string &Path) {
  std::ifstream IS(Path, std::ios::binary);
  if (!IS)
    return std::nullopt;
  std::ostringstream SS;
  SS << IS.rdbuf();
  if (!IS)
    return std::nullopt;
  return SS.str();
}

} // namespace

PolicyStore::PolicyStore(std::string Dir) : Directory(std::move(Dir)) {
  support::sweepOrphanTmpFiles(Directory);
  // Rebuild the nearest-shape index from the sidecars on disk; a
  // policy without a parseable sidecar is never a warm-start source
  // (mirrors DeployIndex::loadFrom over the cubin cache).
  std::error_code Ec;
  std::filesystem::directory_iterator It(Directory, Ec);
  if (Ec)
    return;
  for (const std::filesystem::directory_entry &Entry : It) {
    std::string Name = Entry.path().filename().string();
    const std::string Ext = std::string(PolicyExt) + ".meta";
    if (Name.size() <= Ext.size() ||
        Name.compare(Name.size() - Ext.size(), Ext.size(), Ext) != 0)
      continue;
    std::string Key = Name.substr(0, Name.size() - Ext.size());
    std::optional<std::string> Meta = readFile(Entry.path().string());
    if (!Meta)
      continue;
    if (std::optional<DeployedEntry> Parsed = parseDeployMeta(*Meta, Key))
      Index.add(std::move(*Parsed));
  }
}

std::string PolicyStore::pathFor(const std::string &Key) const {
  return Directory + "/" + Key + PolicyExt;
}

std::string PolicyStore::metaPathFor(const std::string &Key) const {
  return Directory + "/" + Key + PolicyExt + ".meta";
}

bool PolicyStore::store(const std::string &Key,
                        const std::string &PolicyBlob,
                        const DeployedEntry &Meta) {
  std::error_code Ec;
  std::filesystem::create_directories(Directory, Ec);
  if (Ec)
    return false;
  if (!support::atomicWriteFile(pathFor(Key), PolicyBlob))
    return false;
  if (!support::atomicWriteFile(metaPathFor(Key), encodeDeployMeta(Meta)))
    return false;
  DeployedEntry Indexed = Meta;
  Indexed.Key = Key; // The index must point at THIS store's file.
  std::lock_guard<std::mutex> Lock(IndexMutex);
  Index.add(std::move(Indexed));
  return true;
}

std::optional<std::string>
PolicyStore::load(const std::string &Key) const {
  return readFile(pathFor(Key));
}

std::optional<std::string>
PolicyStore::nearest(const std::string &GpuType,
                     kernels::WorkloadKind Kind,
                     const kernels::WorkloadShape &Shape,
                     const std::string &ExcludeKey,
                     std::string *FromKey) const {
  std::string NearKey;
  {
    std::lock_guard<std::mutex> Lock(IndexMutex);
    if (const DeployedEntry *E =
            Index.nearest(GpuType, Kind, Shape, ExcludeKey))
      NearKey = E->Key;
  }
  if (NearKey.empty())
    return std::nullopt;
  std::optional<std::string> Blob = load(NearKey);
  if (Blob && FromKey)
    *FromKey = std::move(NearKey);
  return Blob;
}

size_t PolicyStore::size() const {
  std::lock_guard<std::mutex> Lock(IndexMutex);
  return Index.size();
}

std::vector<std::string> PolicyStore::keys() const {
  std::vector<std::string> Keys;
  std::error_code Ec;
  std::filesystem::directory_iterator It(Directory, Ec);
  if (Ec)
    return Keys;
  const std::string Ext = std::string(PolicyExt) + ".meta";
  for (const std::filesystem::directory_entry &Entry : It) {
    std::string Name = Entry.path().filename().string();
    if (Name.size() > Ext.size() &&
        Name.compare(Name.size() - Ext.size(), Ext.size(), Ext) == 0)
      Keys.push_back(Name.substr(0, Name.size() - Ext.size()));
  }
  std::sort(Keys.begin(), Keys.end());
  return Keys;
}

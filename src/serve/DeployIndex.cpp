//===- serve/DeployIndex.cpp ----------------------------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "serve/DeployIndex.h"

#include "support/StringUtils.h"
#include "triton/DeployCache.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

using namespace cuasmrl;
using namespace cuasmrl::serve;

namespace {

/// Walks every WorkloadShape field in one fixed order so the encoder,
/// parser, and distance all agree on the field list.
template <typename Shape, typename Fn>
void visitShapeFields(Shape &S, Fn &&F) {
  F(S.B);
  F(S.M);
  F(S.N);
  F(S.K);
  F(S.NHead);
  F(S.SeqLen);
  F(S.DHead);
  F(S.Rows);
  F(S.Cols);
}

} // namespace

std::string serve::encodeDeployMeta(const DeployedEntry &Entry) {
  std::string Out = "cuasmrl-deploy-meta v1\n";
  Out += "gpu=" + Entry.GpuType + "\n";
  Out += "kind=" + kernels::workloadName(Entry.Kind) + "\n";
  Out += "shape=";
  bool First = true;
  visitShapeFields(Entry.Shape, [&](const unsigned &V) {
    if (!First)
      Out += ',';
    Out += std::to_string(V);
    First = false;
  });
  Out += "\n";
  return Out;
}

std::optional<DeployedEntry>
serve::parseDeployMeta(const std::string &Text, std::string Key) {
  DeployedEntry Entry;
  Entry.Key = std::move(Key);
  bool SawVersion = false, SawKind = false, SawShape = false;
  for (const std::string &Line : split(Text, '\n')) {
    if (Line == "cuasmrl-deploy-meta v1") {
      SawVersion = true;
    } else if (startsWith(Line, "gpu=")) {
      Entry.GpuType = Line.substr(4);
    } else if (startsWith(Line, "kind=")) {
      std::string Name = Line.substr(5);
      for (kernels::WorkloadKind K : kernels::allWorkloads()) {
        if (kernels::workloadName(K) == Name) {
          Entry.Kind = K;
          SawKind = true;
          break;
        }
      }
    } else if (startsWith(Line, "shape=")) {
      std::vector<std::string> Parts = split(Line.substr(6), ',');
      size_t I = 0;
      bool Ok = true;
      visitShapeFields(Entry.Shape, [&](unsigned &V) {
        if (I >= Parts.size()) {
          Ok = false;
          return;
        }
        V = static_cast<unsigned>(std::strtoul(Parts[I++].c_str(),
                                               nullptr, 10));
      });
      SawShape = Ok && I == Parts.size();
    }
    // Unknown lines are tolerated (additions never need a v2).
  }
  if (!SawVersion || !SawKind || !SawShape)
    return std::nullopt;
  return Entry;
}

double DeployIndex::shapeDistance(const kernels::WorkloadShape &A,
                                  const kernels::WorkloadShape &B) {
  double Sum = 0.0;
  const kernels::WorkloadShape &CA = A;
  const kernels::WorkloadShape &CB = B;
  // Paired walk: collect A's fields, then consume them against B's.
  std::vector<unsigned> FieldsA;
  visitShapeFields(CA, [&](const unsigned &V) { FieldsA.push_back(V); });
  size_t I = 0;
  visitShapeFields(CB, [&](const unsigned &V) {
    double LogRatio = std::log(static_cast<double>(std::max(1u, V))) -
                      std::log(static_cast<double>(
                          std::max(1u, FieldsA[I++])));
    Sum += LogRatio * LogRatio;
  });
  return Sum;
}

void DeployIndex::add(DeployedEntry Entry) {
  for (DeployedEntry &E : Entries) {
    if (E.Key == Entry.Key) {
      E = std::move(Entry);
      return;
    }
  }
  Entries.push_back(std::move(Entry));
}

void DeployIndex::loadFrom(const triton::DeployCache &Cache) {
  for (const std::string &Key : Cache.keys()) {
    std::optional<std::string> Meta = Cache.loadMeta(Key);
    if (!Meta)
      continue; // No sidecar: never a near-miss source.
    if (std::optional<DeployedEntry> Entry = parseDeployMeta(*Meta, Key))
      add(std::move(*Entry));
  }
}

const DeployedEntry *
DeployIndex::nearest(const std::string &GpuType,
                     kernels::WorkloadKind Kind,
                     const kernels::WorkloadShape &Shape,
                     const std::string &ExcludeKey) const {
  const DeployedEntry *Best = nullptr;
  double BestDist = 0.0;
  for (const DeployedEntry &E : Entries) {
    if (E.GpuType != GpuType || E.Kind != Kind || E.Key == ExcludeKey)
      continue;
    double Dist = shapeDistance(Shape, E.Shape);
    // Deterministic: distance first, lexicographic key as tie-break,
    // so the served near-miss never depends on insertion order.
    if (!Best || Dist < BestDist ||
        (Dist == BestDist && E.Key < Best->Key)) {
      Best = &E;
      BestDist = Dist;
    }
  }
  return Best;
}

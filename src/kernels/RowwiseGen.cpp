//===- kernels/RowwiseGen.cpp - Memory-bound rowwise codegen -------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// The paper's memory-bound kernels: fused two-pass softmax and rmsnorm
/// (one block per row, warps split the columns), plus the single-pass
/// streaming kernels the Torch-eager compositions chain together.
///
/// TritonO3 places each LDG directly before its consumers; the Expert
/// schedule hoists the second chunk's load to the top of the iteration,
/// overlapping DRAM latency with the first chunk's math — exactly the
/// kind of move the RL agent learns with repeated upward swaps.
///
/// Register map:
///   R0 ctaid.x (row), R28 warp id
///   R2:R3 input pointer (walking), R10:R11 saved input base
///   R4:R5 second input (weights / row scalars), R6:R7 output pointer
///   R8 iteration counter, R9 iteration count
///   R20..R23 chunk A, R24..R27 chunk B
///   R60 running max / R61 running sum, R58 scale factor
///   R62..R67 temps, R44..R47 output staging
///
//===----------------------------------------------------------------------===//

#include "kernels/Generators.h"

#include "kernels/AsmWriter.h"

#include <algorithm>
#include <cassert>

using namespace cuasmrl;
using namespace cuasmrl::kernels;

namespace {

/// Emits CTAID/TID reads and the pointer prologue shared by every
/// rowwise kernel. Pointers: R2:R3 = In + row*Cols*4 + warp*CPW*4, with
/// the same offset applied to Out (R6:R7) and In2 (R4:R5, when \p
/// WantIn2). The untouched input base is saved to R10:R11 for pass 2.
void emitRowProlog(AsmWriter &W, unsigned Cols, unsigned ColsPerWarp,
                   bool WantIn2, bool In2PerRow, unsigned Warps) {
  W.ins(0, -1, 0, false, 1, "S2R R0, SR_CTAID.X");
  W.ins(0, -1, 3, false, 1, "S2R R28, SR_TID.X");
  W.ins(0x09, -1, -1, false, 4, "SHF.R.U32 R28, R28, 0x5, RZ");

  W.ins(1, "MOV R2, " + param(0));
  W.ins(1, "MOV R3, " + param(4));
  W.ins(1, "MOV R6, " + param(8));
  W.ins(1, "MOV R7, " + param(12));
  if (WantIn2) {
    W.ins(1, "MOV R4, " + param(16));
    W.ins(4, "MOV R5, " + param(20));
  }

  // Row/warp offset (bytes): row*Cols*4 + warp*ColsPerWarp*4.
  W.ins(5, "IMAD R20, R0, " + hex(Cols * 4) + ", RZ");
  W.ins(5, "IMAD R20, R28, " + hex(ColsPerWarp * 4) + ", R20");
  W.ins(5, "IADD3 R2, P1, R2, R20, RZ");
  W.ins(2, "IADD3.X R3, R3, RZ, RZ, P1, !PT");
  W.ins(5, "IADD3 R6, P2, R6, R20, RZ");
  W.ins(2, "IADD3.X R7, R7, RZ, RZ, P2, !PT");
  if (WantIn2) {
    if (In2PerRow) {
      // One scalar per (row, warp): offset = (row*Warps + warp)*4.
      W.ins(5, "IMAD R21, R0, " + hex(Warps * 4) + ", RZ");
      W.ins(5, "IMAD R21, R28, 0x4, R21");
    } else {
      // Per-column weights: warp offset only (shared across rows).
      W.ins(5, "IMAD R21, R28, " + hex(ColsPerWarp * 4) + ", RZ");
    }
    W.ins(5, "IADD3 R4, P1, R4, R21, RZ");
    W.ins(2, "IADD3.X R5, R5, RZ, RZ, P1, !PT");
  }
  // Save the input base for pass 2.
  W.ins(1, "MOV R10, R2");
  W.ins(4, "MOV R11, R3");
}

/// Emits the loop header for `Iters` iterations over R8 and returns the
/// exit label name.
void emitLoopHead(AsmWriter &W, const std::string &Label,
                  const std::string &ExitLabel) {
  W.label(Label);
  W.ins(5, "ISETP.GE.AND P0, PT, R8, R9, PT");
  W.ins(1, "@P0 BRA `(" + ExitLabel + ")");
}

/// Per-chunk online-softmax statistics (4 elements in Base..Base+3).
void emitSoftmaxStats(AsmWriter &W, unsigned Base) {
  W.ins(1, "FMNMX R62, " + rg(Base) + ", " + rg(Base + 1) + ", !PT");
  W.ins(5, "FMNMX R63, " + rg(Base + 2) + ", " + rg(Base + 3) + ", !PT");
  W.ins(5, "FMNMX R62, R62, R63, !PT");
  W.ins(5, "FMNMX R60, R60, R62, !PT");
  for (unsigned E = 0; E < 4; ++E)
    W.ins(E == 3 ? 5 : 1, "FADD " + rg(64 + E) + ", " + rg(Base + E) +
                              ", -R60");
  for (unsigned E = 0; E < 4; ++E)
    W.ins(0, -1, 5, false, 1,
          "MUFU.EX2 " + rg(64 + E) + ", " + rg(64 + E));
  W.insWait(0x20, 1, "FADD R62, R64, R65");
  W.ins(5, "FADD R63, R66, R67");
  W.ins(5, "FADD R62, R62, R63");
  W.ins(5, "FADD R61, R61, R62");
}

/// Per-chunk sum-of-squares statistics.
void emitSquareStats(AsmWriter &W, unsigned Base) {
  for (unsigned E = 0; E < 4; ++E)
    W.ins(E == 3 ? 5 : 1, "FMUL " + rg(64 + E) + ", " + rg(Base + E) +
                              ", " + rg(Base + E));
  W.ins(1, "FADD R62, R64, R65");
  W.ins(5, "FADD R63, R66, R67");
  W.ins(5, "FADD R62, R62, R63");
  W.ins(5, "FADD R61, R61, R62");
}

/// Pass-2 normalize+store of one chunk: out = f(x) * R58 [* w].
void emitNormalizeStore(AsmWriter &W, WorkloadKind Kind, unsigned Base,
                        bool HasWeights, unsigned WBase,
                        unsigned OutOffset) {
  if (Kind == WorkloadKind::Softmax) {
    for (unsigned E = 0; E < 4; ++E)
      W.ins(E == 3 ? 5 : 1, "FADD " + rg(44 + E) + ", " + rg(Base + E) +
                                ", -R60");
    for (unsigned E = 0; E < 4; ++E)
      W.ins(0, -1, 5, false, 1,
            "MUFU.EX2 " + rg(44 + E) + ", " + rg(44 + E));
    for (unsigned E = 0; E < 4; ++E)
      W.ins(E == 0 ? 0x20 : 0, -1, -1, false, E == 3 ? 5 : 1,
            "FMUL " + rg(44 + E) + ", " + rg(44 + E) + ", R58");
  } else {
    for (unsigned E = 0; E < 4; ++E)
      W.ins(E == 3 ? 5 : 1, "FMUL " + rg(44 + E) + ", " + rg(Base + E) +
                                ", R58");
    if (HasWeights)
      for (unsigned E = 0; E < 4; ++E)
        W.ins(E == 3 ? 5 : 1, "FMUL " + rg(44 + E) + ", " + rg(44 + E) +
                                  ", " + rg(WBase + E));
  }
  W.ins(1, "STG.E.128 [R6.64+" + hex(OutOffset) + "], R44");
}

} // namespace

GenResult kernels::genRowwise(WorkloadKind Kind, const WorkloadShape &S,
                              const TileConfig &C, ScheduleStyle Style) {
  assert((Kind == WorkloadKind::Softmax || Kind == WorkloadKind::RmsNorm) &&
         "rowwise generator handles softmax/rmsnorm");
  const bool IsRms = Kind == WorkloadKind::RmsNorm;
  const unsigned ColsPerWarp = std::max(8u, S.Cols / C.Warps);
  const unsigned Iters = std::max(1u, ColsPerWarp / 8);

  GenResult Out;
  Out.GridX = S.Rows;
  Out.Warps = C.Warps;
  Out.SharedBytes = 0;
  Out.OutBytes = static_cast<uint64_t>(S.Rows) * S.Cols * 4;

  AsmWriter W;
  emitRowProlog(W, S.Cols, ColsPerWarp, IsRms, /*In2PerRow=*/false,
                C.Warps);
  W.ins(1, IsRms ? "MOV R61, 0x0" : "MOV R60, 0xff800000");
  W.ins(1, IsRms ? "MOV R60, 0x0" : "MOV R61, 0x0");
  W.ins(1, "MOV R8, 0x0");
  W.ins(4, "MOV R9, " + hex(Iters));

  // ---- pass 1: statistics -------------------------------------------------
  emitLoopHead(W, ".L_P1", ".L_MID");
  // Fresh address temp per iteration keeps the loads' address
  // definitions in-block (out of the denylist) and hoistable.
  W.ins(5, "IMAD.WIDE R12, RZ, RZ, R2");
  if (Style == ScheduleStyle::Expert) {
    // Both chunk loads issue up front: chunk B's DRAM latency overlaps
    // chunk A's math.
    W.ins(0, -1, 0, false, 2, "LDG.E.128 R20, [R12.64]");
    W.ins(0, -1, 1, false, 2, "LDG.E.128 R24, [R12.64+0x10]");
    W.insWait(0x01, 1, "NOP");
    if (IsRms)
      emitSquareStats(W, 20);
    else
      emitSoftmaxStats(W, 20);
    W.insWait(0x02, 1, "NOP");
    if (IsRms)
      emitSquareStats(W, 24);
    else
      emitSoftmaxStats(W, 24);
  } else {
    // TritonO3: each load sits directly above its consumers.
    W.ins(0, -1, 0, false, 2, "LDG.E.128 R20, [R12.64]");
    W.insWait(0x01, 1, "NOP");
    if (IsRms)
      emitSquareStats(W, 20);
    else
      emitSoftmaxStats(W, 20);
    W.ins(0, -1, 1, false, 2, "LDG.E.128 R24, [R12.64+0x10]");
    W.insWait(0x02, 1, "NOP");
    if (IsRms)
      emitSquareStats(W, 24);
    else
      emitSoftmaxStats(W, 24);
  }
  W.ins(5, "IADD3 R2, P1, R2, 0x20, RZ");
  W.ins(2, "IADD3.X R3, R3, RZ, RZ, P1, !PT");
  W.ins(4, "IADD3 R8, R8, 0x1, RZ");
  W.ins(1, "BRA `(.L_P1)");

  // ---- between passes: the scale factor ----------------------------------
  W.label(".L_MID");
  if (IsRms) {
    // rsqrt(mean(x^2)) over this warp's slice.
    char MeanBuf[32];
    std::snprintf(MeanBuf, sizeof(MeanBuf), "%.9g",
                  1.0 / static_cast<double>(ColsPerWarp));
    W.ins(5, std::string("FMUL R61, R61, ") + MeanBuf);
    W.ins(0, -1, 5, false, 1, "MUFU.RSQ R58, R61");
  } else {
    W.ins(0, -1, 5, false, 1, "MUFU.RCP R58, R61");
  }
  // Rewind the input pointer and reset the counter.
  W.ins(1, "MOV R2, R10");
  W.ins(4, "MOV R3, R11");
  W.ins(0x20, -1, -1, false, 4, "MOV R8, 0x0");

  // ---- pass 2: normalize + store ------------------------------------------
  emitLoopHead(W, ".L_P2", ".L_DONE");
  W.ins(5, "IMAD.WIDE R12, RZ, RZ, R2");
  if (IsRms)
    W.ins(5, "IMAD.WIDE R14, RZ, RZ, R4");
  auto LoadWeights = [&](unsigned Off, int Slot, unsigned Dest) {
    W.ins(0, -1, Slot, false, 2,
          "LDG.E.128 " + rg(Dest) + ", [R14.64+" + hex(Off) + "]");
  };
  if (Style == ScheduleStyle::Expert) {
    W.ins(0, -1, 0, false, 2, "LDG.E.128 R20, [R12.64]");
    W.ins(0, -1, 1, false, 2, "LDG.E.128 R24, [R12.64+0x10]");
    if (IsRms) {
      LoadWeights(0, 2, 48);
      LoadWeights(0x10, 3, 52);
    }
    W.insWait(IsRms ? 0x05 : 0x01, 1, "NOP");
    emitNormalizeStore(W, Kind, 20, IsRms, 48, 0);
    W.insWait(IsRms ? 0x0a : 0x02, 1, "NOP");
    emitNormalizeStore(W, Kind, 24, IsRms, 52, 0x10);
  } else {
    W.ins(0, -1, 0, false, 2, "LDG.E.128 R20, [R12.64]");
    if (IsRms)
      LoadWeights(0, 2, 48);
    W.insWait(IsRms ? 0x05 : 0x01, 1, "NOP");
    emitNormalizeStore(W, Kind, 20, IsRms, 48, 0);
    W.ins(0, -1, 1, false, 2, "LDG.E.128 R24, [R12.64+0x10]");
    if (IsRms)
      LoadWeights(0x10, 3, 52);
    W.insWait(IsRms ? 0x0a : 0x02, 1, "NOP");
    emitNormalizeStore(W, Kind, 24, IsRms, 52, 0x10);
  }
  W.ins(5, "IADD3 R2, P1, R2, 0x20, RZ");
  W.ins(2, "IADD3.X R3, R3, RZ, RZ, P1, !PT");
  if (IsRms) {
    W.ins(5, "IADD3 R4, P2, R4, 0x20, RZ");
    W.ins(2, "IADD3.X R5, R5, RZ, RZ, P2, !PT");
  }
  W.ins(5, "IADD3 R6, P1, R6, 0x20, RZ");
  W.ins(2, "IADD3.X R7, R7, RZ, RZ, P1, !PT");
  W.ins(4, "IADD3 R8, R8, 0x1, RZ");
  W.ins(1, "BRA `(.L_P2)");

  W.label(".L_DONE");
  W.ins(1, "EXIT");

  Out.Text = W.take();
  return Out;
}

GenResult kernels::genStream(StreamOp Op, unsigned Rows, unsigned Cols,
                             unsigned Warps) {
  const unsigned ColsPerWarp = std::max(8u, Cols / Warps);
  const unsigned Iters = std::max(1u, ColsPerWarp / 8);
  const bool WantIn2 =
      Op == StreamOp::ScaleByRow || Op == StreamOp::MulElems;
  const bool RowScalarOut =
      Op == StreamOp::SquareSum || Op == StreamOp::RowMax;

  GenResult Out;
  Out.GridX = Rows;
  Out.Warps = Warps;
  Out.OutBytes = RowScalarOut
                     ? static_cast<uint64_t>(Rows) * Warps * 4
                     : static_cast<uint64_t>(Rows) * Cols * 4;

  AsmWriter W;
  emitRowProlog(W, Cols, ColsPerWarp, WantIn2,
                /*In2PerRow=*/Op == StreamOp::ScaleByRow, Warps);
  W.ins(1, "MOV R60, 0xff800000"); // Running max.
  W.ins(1, "MOV R61, 0x0");        // Running sum.
  W.ins(1, "MOV R8, 0x0");
  W.ins(4, "MOV R9, " + hex(Iters));
  if (Op == StreamOp::ScaleByRow) {
    // The row scalar was stored per (row, warp) by the producer kernel.
    W.ins(0, -1, 5, false, 1, "LDG.E R58, [R4.64]");
    W.insWait(0x20, 1, "NOP");
  }
  if (RowScalarOut) {
    // Scalar output lands at out + (row*Warps + warp)*4.
    W.ins(5, "IMAD R21, R0, " + hex(Warps * 4) + ", RZ");
    W.ins(5, "IMAD R21, R28, 0x4, R21");
    W.ins(1, "MOV R6, " + param(8));
    W.ins(4, "MOV R7, " + param(12));
    W.ins(5, "IADD3 R6, P2, R6, R21, RZ");
    W.ins(2, "IADD3.X R7, R7, RZ, RZ, P2, !PT");
  }

  emitLoopHead(W, ".L_LOOP", ".L_DONE");
  for (unsigned Chunk = 0; Chunk < 2; ++Chunk) {
    unsigned Base = Chunk ? 24 : 20;
    unsigned Off = Chunk ? 0x10 : 0x0;
    int Slot = Chunk ? 1 : 0;
    W.ins(0, -1, Slot, false, 2,
          "LDG.E.128 " + rg(Base) + ", [R2.64+" + hex(Off) + "]");
    if (Op == StreamOp::MulElems)
      W.ins(0, -1, Slot + 2, false, 2,
            "LDG.E.128 " + rg(Base + 28) + ", [R4.64+" + hex(Off) + "]");
    uint8_t Wait = static_cast<uint8_t>(
        (1u << Slot) | (Op == StreamOp::MulElems ? (4u << Slot) : 0u));
    W.insWait(Wait, 1, "NOP");

    switch (Op) {
    case StreamOp::LeakyRelu:
      for (unsigned E = 0; E < 4; ++E) {
        W.ins(1, "FSETP.GT.AND P2, PT, " + rg(Base + E) + ", RZ, PT");
        W.ins(5, "FMUL R40, " + rg(Base + E) + ", 0.01");
        W.ins(5, "FSEL " + rg(44 + E) + ", " + rg(Base + E) + ", R40, P2");
      }
      W.ins(1, "STG.E.128 [R6.64+" + hex(Off) + "], R44");
      break;
    case StreamOp::Silu:
      for (unsigned E = 0; E < 4; ++E) {
        W.ins(5, "FMUL R40, " + rg(Base + E) + ", -1.4427");
        W.ins(0, -1, 5, false, 1, "MUFU.EX2 R41, R40");
        W.ins(0x20, -1, -1, false, 5, "FADD R42, R41, 1.0");
        W.ins(0, -1, 5, false, 1, "MUFU.RCP R43, R42");
        W.ins(0x20, -1, -1, false, 5,
              "FMUL " + rg(44 + E) + ", " + rg(Base + E) + ", R43");
      }
      W.ins(1, "STG.E.128 [R6.64+" + hex(Off) + "], R44");
      break;
    case StreamOp::SquareSum:
      emitSquareStats(W, Base);
      break;
    case StreamOp::RowMax:
      W.ins(1, "FMNMX R62, " + rg(Base) + ", " + rg(Base + 1) + ", !PT");
      W.ins(5, "FMNMX R63, " + rg(Base + 2) + ", " + rg(Base + 3) +
                   ", !PT");
      W.ins(5, "FMNMX R62, R62, R63, !PT");
      W.ins(5, "FMNMX R60, R60, R62, !PT");
      break;
    case StreamOp::ExpSum:
      for (unsigned E = 0; E < 4; ++E)
        W.ins(0, -1, 5, false, E == 3 ? 5 : 1,
              "MUFU.EX2 " + rg(44 + E) + ", " + rg(Base + E));
      W.insWait(0x20, 1, "FADD R62, R44, R45");
      W.ins(5, "FADD R63, R46, R47");
      W.ins(5, "FADD R62, R62, R63");
      W.ins(5, "FADD R61, R61, R62");
      W.ins(1, "STG.E.128 [R6.64+" + hex(Off) + "], R44");
      break;
    case StreamOp::ScaleByRow:
      for (unsigned E = 0; E < 4; ++E)
        W.ins(E == 3 ? 5 : 1, "FMUL " + rg(44 + E) + ", " + rg(Base + E) +
                                  ", R58");
      W.ins(1, "STG.E.128 [R6.64+" + hex(Off) + "], R44");
      break;
    case StreamOp::MulElems:
      for (unsigned E = 0; E < 4; ++E)
        W.ins(E == 3 ? 5 : 1, "FMUL " + rg(44 + E) + ", " + rg(Base + E) +
                                  ", " + rg(Base + 28 + E));
      W.ins(1, "STG.E.128 [R6.64+" + hex(Off) + "], R44");
      break;
    }
  }
  W.ins(5, "IADD3 R2, P1, R2, 0x20, RZ");
  W.ins(2, "IADD3.X R3, R3, RZ, RZ, P1, !PT");
  if (Op == StreamOp::MulElems) {
    W.ins(5, "IADD3 R4, P2, R4, 0x20, RZ");
    W.ins(2, "IADD3.X R5, R5, RZ, RZ, P2, !PT");
  }
  if (!RowScalarOut) {
    W.ins(5, "IADD3 R6, P1, R6, 0x20, RZ");
    W.ins(2, "IADD3.X R7, R7, RZ, RZ, P1, !PT");
  }
  W.ins(4, "IADD3 R8, R8, 0x1, RZ");
  W.ins(1, "BRA `(.L_LOOP)");

  W.label(".L_DONE");
  if (Op == StreamOp::SquareSum)
    W.ins(5, "STG.E [R6.64], R61");
  else if (Op == StreamOp::RowMax)
    W.ins(5, "STG.E [R6.64], R60");
  W.ins(1, "EXIT");

  Out.Text = W.take();
  return Out;
}

bool kernels::configFits(WorkloadKind Kind, const WorkloadShape &S,
                         const TileConfig &C) {
  switch (Kind) {
  case WorkloadKind::FusedFF:
  case WorkloadKind::MmLeakyRelu:
  case WorkloadKind::Bmm:
    return C.BlockM <= S.M && C.BlockN <= S.N && C.BlockK <= S.K &&
           C.Warps <= C.BlockM && C.Warps <= C.BlockK &&
           S.M % C.BlockM == 0 && S.N % C.BlockN == 0 && S.K % C.BlockK == 0;
  case WorkloadKind::FlashAttention:
    return C.BlockM <= S.SeqLen && C.BlockN <= S.SeqLen &&
           S.SeqLen % C.BlockM == 0 && S.SeqLen % C.BlockN == 0 &&
           C.Warps <= C.BlockN;
  case WorkloadKind::Softmax:
  case WorkloadKind::RmsNorm:
    return S.Cols % (C.Warps * 8) == 0;
  }
  return false;
}

//===- kernels/Builder.h - Workload kernel construction ----------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds runnable kernels for the evaluated workloads: generates the
/// SASS (the "ptxas -O3" stand-in, §2 of DESIGN.md), allocates and
/// randomizes device buffers, and assembles the KernelLaunch. Also
/// provides the Figure 6 baselines:
///
///  - ScheduleStyle::Expert — the hand-scheduled reference
///    (cuBLAS / FlashAttention-2 class),
///  - buildTorchComposition — PyTorch-eager style compositions of
///    unfused kernels (extra global-memory round trips, cuBLAS GEMMs),
///  - buildCutlassDefault — Cutlass with its untuned default
///    configuration (§5.3: ~10x below Triton).
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_KERNELS_BUILDER_H
#define CUASMRL_KERNELS_BUILDER_H

#include "gpusim/Gpu.h"
#include "kernels/Workload.h"
#include "sass/Program.h"
#include "support/Rng.h"

#include <vector>

namespace cuasmrl {
namespace kernels {

/// A generated kernel plus everything needed to run and check it.
struct BuiltKernel {
  std::string Name;
  sass::Program Prog;
  gpusim::KernelLaunch Launch;

  /// Output buffer (for result comparison / probabilistic testing).
  uint64_t OutAddr = 0;
  uint64_t OutBytes = 0;
  /// Input buffers (re-randomized by probabilistic testing).
  std::vector<std::pair<uint64_t, uint64_t>> Inputs;
  /// True when inputs are packed fp16x2 words (the GEMM/attention
  /// family); false for f32 tensors (rowwise kernels). Randomization
  /// keeps values finite so results are exactly reproducible.
  bool HalfInputs = false;

  /// Refills every input buffer with fresh random words and zeroes the
  /// output.
  void randomizeInputs(gpusim::Gpu &Device, Rng &DataRng) const;

  /// Reads back the output buffer.
  std::vector<uint32_t> readOutput(const gpusim::Gpu &Device) const;
};

/// Builds the fused kernel for \p Kind with the given configuration and
/// scheduling style. Buffers are allocated on \p Device and randomized
/// from \p DataRng.
///
/// Thread-safety (audited for the parallel autotune sweep): the only
/// state touched is \p Device (buffer allocation + input writes) and
/// \p DataRng; the generators and the SASS parser keep no mutable
/// globals. Concurrent calls are safe iff each caller owns its Device
/// and Rng — two workers sharing either is a data race. The sweep
/// engine therefore builds every candidate on a private Gpu copy with
/// a per-candidate Rng stream.
BuiltKernel buildKernel(gpusim::Gpu &Device, WorkloadKind Kind,
                        const WorkloadShape &Shape, const TileConfig &Config,
                        ScheduleStyle Style, Rng &DataRng);

/// PyTorch-eager composition: the same computation as a sequence of
/// library kernels with global-memory round trips between them.
std::vector<BuiltKernel> buildTorchComposition(gpusim::Gpu &Device,
                                               WorkloadKind Kind,
                                               const WorkloadShape &Shape,
                                               Rng &DataRng);

/// Cutlass stand-in with the untuned default configuration (GEMM-family
/// kinds only; other kinds fall back to the default TileConfig).
BuiltKernel buildCutlassDefault(gpusim::Gpu &Device, WorkloadKind Kind,
                                const WorkloadShape &Shape, Rng &DataRng);

/// Per-launch overhead in microseconds charged to each kernel of a
/// composition (kernel-launch latency the fused versions avoid).
constexpr double LaunchOverheadUs = 4.0;

} // namespace kernels
} // namespace cuasmrl

#endif // CUASMRL_KERNELS_BUILDER_H

//===- kernels/GemmGen.cpp - Pipelined GEMM-family codegen --------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// Emits the Ampere-style pipelined GEMM the paper's compute-bound
/// kernels share: LDGSTS double-buffered tiles in shared memory,
/// BAR.SYNC-separated pipeline stages, LDS fragment loads and HMMA
/// accumulation with `.reuse` operand-cache hints, and a fused epilogue.
///
/// Register map (per warp, warp-scalar):
///   R0/R1/R29  CTAID.X/Y/Z          R28 warp id
///   R2:R3      A pointer            R4:R5  B pointer
///   R6:R7      Out pointer          R8 k-iter, R9 limit, R26 limit-1
///   R16/R18    shared write bases (A/B; stage-flipped by LOP3 xor)
///   R17/R19    shared read bases (A/B)
///   R24        dead-LDS destination (predicated off)
///   R32..R39   accumulators
///   R48..R51   A fragments          R52..R59 B fragments
///   R40..R43   epilogue temps       R20..R23 address temps
///
//===----------------------------------------------------------------------===//

#include "kernels/Generators.h"

#include "kernels/AsmWriter.h"

#include <algorithm>
#include <cassert>

using namespace cuasmrl;
using namespace cuasmrl::kernels;

namespace {

unsigned nextPow2(unsigned X) {
  unsigned P = 1;
  while (P < X)
    P <<= 1;
  return P;
}

/// Derived per-config geometry.
struct GemmDims {
  unsigned ATileBytes, BTileBytes, StageStride, SharedBytes;
  unsigned NumA, NumB;       ///< LDGSTS per warp per iteration (A / B).
  unsigned Groups, PerGroup; ///< HMMA k-slice groups and HMMAs per group.
  unsigned RowsPerWarp, KIters;
};

GemmDims deriveDims(const WorkloadShape &S, const TileConfig &C) {
  GemmDims D;
  D.ATileBytes = C.BlockM * C.BlockK * 2;
  D.BTileBytes = C.BlockK * C.BlockN * 2;
  D.StageStride = nextPow2(D.ATileBytes + D.BTileBytes);
  D.SharedBytes = std::max(1u, C.Stages) * D.StageStride;
  D.NumA = std::max(1u, D.ATileBytes / C.Warps / 512);
  D.NumB = std::max(1u, D.BTileBytes / C.Warps / 512);
  D.Groups = std::max(1u, C.BlockK / 16);
  D.PerGroup = std::clamp((C.BlockM / 16) * (C.BlockN / 8) / C.Warps, 2u, 8u);
  D.PerGroup &= ~1u; // Keep reuse pairs whole.
  D.RowsPerWarp = C.BlockM / C.Warps;
  D.KIters = std::max(1u, S.K / C.BlockK);
  return D;
}

/// Emits the prologue: special-register reads, pointer setup, shared
/// bases, accumulator zeroing and (for 2-stage pipelines) the stage-0
/// prefetch + barrier.
void emitGemmProlog(AsmWriter &W, const WorkloadShape &S,
                    const TileConfig &C, const GemmDims &D, unsigned GridX,
                    unsigned GridY, bool Batched) {
  const unsigned KBytesRow = S.K * 2; // A row stride.
  const unsigned NBytesRow = S.N * 2; // B row stride.

  W.ins(0, -1, 0, false, 1, "S2R R0, SR_CTAID.X");
  W.ins(0, -1, 1, false, 1, "S2R R1, SR_CTAID.Y");
  W.ins(0, -1, 2, false, 1, "S2R R29, SR_CTAID.Z");
  W.ins(0, -1, 3, false, 1, "S2R R28, SR_TID.X");
  W.ins(0x0f, -1, -1, false, 4, "SHF.R.U32 R28, R28, 0x5, RZ");

  W.ins(1, "MOV R2, " + param(0));
  W.ins(1, "MOV R3, " + param(4));
  W.ins(1, "MOV R4, " + param(8));
  W.ins(1, "MOV R5, " + param(12));
  W.ins(1, "MOV R6, " + param(16));
  W.ins(4, "MOV R7, " + param(20));

  // A += (ctaidY*BM + warp*rowsPerWarp) * K*2 [+ ctaidZ*M*K*2].
  W.ins(5, "IMAD R20, R1, " + hex(C.BlockM * KBytesRow) + ", RZ");
  W.ins(5, "IMAD R20, R28, " + hex(D.RowsPerWarp * KBytesRow) + ", R20");
  if (Batched)
    W.ins(5, "IMAD R20, R29, " + hex(S.M * KBytesRow) + ", R20");
  W.ins(5, "IADD3 R2, P1, R2, R20, RZ");
  W.ins(2, "IADD3.X R3, R3, RZ, RZ, P1, !PT");

  // B += ctaidX*BN*2 + warp*(BK/W)*N*2 [+ ctaidZ*K*N*2].
  W.ins(5, "IMAD R21, R0, " + hex(C.BlockN * 2) + ", RZ");
  W.ins(5, "IMAD R21, R28, " +
               hex((C.BlockK / C.Warps) * NBytesRow) + ", R21");
  if (Batched)
    W.ins(5, "IMAD R21, R29, " + hex(S.K * NBytesRow) + ", R21");
  W.ins(5, "IADD3 R4, P2, R4, R21, RZ");
  W.ins(2, "IADD3.X R5, R5, RZ, RZ, P2, !PT");

  // Out += flatBlock*Warps*32 + warp*32 (per-warp 32B result slice).
  W.ins(5, "IMAD R22, R1, " + hex(GridX) + ", R0");
  if (Batched)
    W.ins(5, "IMAD R22, R29, " + hex(GridX * GridY) + ", R22");
  W.ins(5, "IMAD R22, R22, " + hex(C.Warps * 32) + ", RZ");
  W.ins(5, "IMAD R22, R28, 0x20, R22");
  W.ins(5, "IADD3 R6, P1, R6, R22, RZ");
  W.ins(2, "IADD3.X R7, R7, RZ, RZ, P1, !PT");

  // Shared write bases: per-warp slices of the stage-0 A/B tiles.
  W.ins(5, "IMAD R16, R28, " + hex(D.ATileBytes / C.Warps) + ", RZ");
  W.ins(5, "IMAD R18, R28, " + hex(D.BTileBytes / C.Warps) + ", " +
               hex(D.ATileBytes));
  // Shared read bases: warpRow = warp>>1 picks A rows, warpCol = warp&1
  // picks B columns.
  W.ins(4, "SHF.R.U32 R23, R28, 0x1, RZ");
  W.ins(4, "LOP3.LUT R25, R28, 0x1, RZ, 0xc0, !PT");
  // Read bases start one stage ahead when pipelined: the loop flips
  // them at the top of the body (so their definitions are in-block and
  // the fragment loads stay out of the denylist, paper §3.2).
  unsigned ReadBias = C.Stages >= 2 ? D.StageStride : 0;
  W.ins(5, "IMAD R17, R23, " + hex(D.ATileBytes / C.Warps) + ", " +
               hex(ReadBias));
  W.ins(5, "IMAD R19, R25, " + hex(D.BTileBytes / 2) + ", " +
               hex(D.ATileBytes + ReadBias));

  // Loop bounds and accumulators.
  W.ins(1, "MOV R8, 0x0");
  W.ins(1, "MOV R9, " + hex(D.KIters));
  W.ins(1, "MOV R26, " + hex(D.KIters - 1));
  for (unsigned Acc = 0; Acc < D.PerGroup; ++Acc)
    W.ins(Acc + 1 == D.PerGroup ? 4 : 1,
          "MOV " + rg(32 + Acc) + ", 0x0");
}

/// One LDGSTS of a tile slice. \p Guarded adds the @P3 prefetch guard.
void emitLdgsts(AsmWriter &W, bool Guarded, bool Yield, unsigned SharedBase,
                unsigned SharedOff, unsigned GlobalBase, unsigned GlobalOff) {
  std::string Body;
  if (Guarded)
    Body += "@P3 ";
  Body += "LDGSTS.E.BYPASS.128 [" + rg(SharedBase);
  if (SharedOff)
    Body += "+" + hex(SharedOff);
  Body += "], desc[UR16][" + rg(GlobalBase) + ".64";
  if (GlobalOff)
    Body += "+" + hex(GlobalOff);
  Body += "]";
  W.ins(0, -1, /*Write=*/0, Yield, 2, Body);
}

/// Emits one HMMA group: three LDS.128 fragment loads followed by
/// PerGroup HMMAs in `.reuse` pairs. \p Interleave (TritonO3 only)
/// injects LDGSTS index \p BreakerIdx after the first HMMA.
struct PendingLdgsts {
  bool Guarded;
  unsigned SharedBase, SharedOff, GlobalBase, GlobalOff;
};

void emitHmmaGroup(AsmWriter &W, const GemmDims &D, unsigned Group,
                   const PendingLdgsts *Breaker, bool SimtMath) {
  unsigned FragOffA = Group * 0x40;
  unsigned FragOffB = Group * 0x80;
  W.ins(0, -1, 2, false, 1, "LDS.128 R48, [R17+" + hex(FragOffA) + "]");
  W.ins(0, -1, 3, false, 1, "LDS.128 R52, [R19+" + hex(FragOffB) + "]");
  W.ins(0, -1, 4, false, 1,
        "LDS.128 R56, [R19+" + hex(FragOffB + 0x20) + "]");

  for (unsigned I = 0; I < D.PerGroup; ++I) {
    unsigned A = 48 + I / 2;
    unsigned B = (I % 2 ? 56 : 52) + I / 2;
    unsigned Acc = 32 + I;
    // First HMMA of each group waits for all three fragment loads.
    uint8_t Wait = I == 0 ? 0x1c : 0x00;
    if (SimtMath) {
      // SIMT fallback: one fp32 FMA per scalar element of the fragment
      // pair -- eight issue slots where a tensor core needs one.
      for (unsigned F = 0; F < 8; ++F)
        W.ins(F == 0 ? Wait : 0, -1, -1, false, 5,
              "FFMA " + rg(Acc) + ", " + rg(A) + ", " + rg(B) + ", " +
                  rg(Acc));
      continue;
    }
    W.ins(Wait, -1, -1, false, 1,
          "HMMA.16816.F32 " + rg(Acc) + ", " + rg(A) + ".reuse, " + rg(B) +
              ", " + rg(Acc));
    // The ptxas artifact: an asynchronous copy parked inside a reuse
    // pair, with the yield hint that forces the warp switch (§5.7.1).
    if (I == 0 && Breaker)
      emitLdgsts(W, Breaker->Guarded, /*Yield=*/true, Breaker->SharedBase,
                 Breaker->SharedOff, Breaker->GlobalBase,
                 Breaker->GlobalOff);
  }
}

} // namespace

GenResult kernels::genGemm(const WorkloadShape &S, const TileConfig &C,
                           ScheduleStyle Style, GemmEpilogue Epilogue,
                           bool SimtMath) {
  GemmDims D = deriveDims(S, C);
  const unsigned KBytesRow = S.K * 2;
  const unsigned NBytesRow = S.N * 2;
  const bool Pipelined = C.Stages >= 2;

  GenResult Out;
  Out.GridX = std::max(1u, S.N / C.BlockN);
  Out.GridY = std::max(1u, S.M / C.BlockM);
  Out.GridZ = S.B;
  Out.Warps = C.Warps;
  Out.SharedBytes = D.SharedBytes;

  AsmWriter W;
  emitGemmProlog(W, S, C, D, Out.GridX, Out.GridY, S.B > 1);

  // Collect this iteration's LDGSTS batch. Offsets ascend within each
  // shared-base group (the §3.5 hardware ordering requirement).
  auto MakeBatch = [&](bool Guarded, bool UseTemps) {
    unsigned ABase = UseTemps ? 10 : 2;
    unsigned BBase = UseTemps ? 12 : 4;
    std::vector<PendingLdgsts> Batch;
    for (unsigned J = 0; J < D.NumA; ++J)
      Batch.push_back({Guarded, 16, J * 0x200, ABase, J * 8 * KBytesRow});
    for (unsigned J = 0; J < D.NumB; ++J)
      Batch.push_back({Guarded, 18, J * 0x200, BBase, J * 4 * NBytesRow});
    return Batch;
  };

  if (Pipelined) {
    // Stage-0 prefetch, then wait + barrier before the pipeline starts.
    for (const PendingLdgsts &L : MakeBatch(false, false))
      emitLdgsts(W, false, false, L.SharedBase, L.SharedOff, L.GlobalBase,
                 L.GlobalOff);
    W.ins(0x01, -1, -1, false, 1, "BAR.SYNC 0x0");
  }

  W.label(".L_LOOP");
  W.ins(5, "ISETP.GE.AND P0, PT, R8, R9, PT");
  W.ins(1, "@P0 BRA `(.L_EPILOG)");

  std::vector<PendingLdgsts> Batch;
  if (Pipelined) {
    // Flip the write and read bases to the other stage and guard the
    // prefetch.
    W.ins(4, "LOP3.LUT R16, R16, " + hex(D.StageStride) + ", RZ, 0x3c, !PT");
    W.ins(4, "LOP3.LUT R18, R18, " + hex(D.StageStride) + ", RZ, 0x3c, !PT");
    W.ins(4, "LOP3.LUT R17, R17, " + hex(D.StageStride) + ", RZ, 0x3c, !PT");
    W.ins(4, "LOP3.LUT R19, R19, " + hex(D.StageStride) + ", RZ, 0x3c, !PT");
    W.ins(5, "ISETP.LT.AND P3, PT, R8, R26, PT");
    // Fresh global-address temps (ptxas interleaves IMAD.WIDE with the
    // LDGSTS stream, paper Listing 9); keeping the definitions in-block
    // keeps the copies out of the stall-inference denylist.
    W.ins(5, "IMAD.WIDE R10, RZ, RZ, R2");
    W.ins(5, "IMAD.WIDE R12, RZ, RZ, R4");
    Batch = MakeBatch(true, true);
  } else {
    // Single stage: fetch the *current* tile, wait, and sync.
    Batch = MakeBatch(false, false);
    for (const PendingLdgsts &L : Batch)
      emitLdgsts(W, false, false, L.SharedBase, L.SharedOff, L.GlobalBase,
                 L.GlobalOff);
    Batch.clear();
    W.ins(0x01, -1, -1, false, 1, "BAR.SYNC 0x0");
  }

  // Distribute the pipelined LDGSTS batch through the body.
  size_t Next = 0;
  const PendingLdgsts *Breaker = nullptr;
  if (Pipelined) {
    if (Style == ScheduleStyle::Expert) {
      // Expert: every async copy issues up front, before the dead LDS
      // and the fragment loads — maximal overlap, reuse pairs intact.
      for (const PendingLdgsts &L : Batch)
        emitLdgsts(W, L.Guarded, false, L.SharedBase, L.SharedOff,
                   L.GlobalBase, L.GlobalOff);
      Next = Batch.size();
      W.ins(1, "@!PT LDS.128 R24, [R19+0x10]");
    } else {
      // TritonO3: first A-copy, then the dead predicated LDS *above*
      // the second A-copy (the Figure 13 artifact).
      emitLdgsts(W, true, false, Batch[0].SharedBase, Batch[0].SharedOff,
                 Batch[0].GlobalBase, Batch[0].GlobalOff);
      ++Next;
      W.ins(1, "@!PT LDS.128 R24, [R19+0x10]");
      if (Next < Batch.size() && Batch[Next].SharedBase == 16) {
        emitLdgsts(W, true, false, Batch[Next].SharedBase,
                   Batch[Next].SharedOff, Batch[Next].GlobalBase,
                   Batch[Next].GlobalOff);
        ++Next;
      }
      // The first B-copy becomes the reuse breaker inside group 0.
      if (Next < Batch.size())
        Breaker = &Batch[Next];
    }
  }

  // Pointer advances for the next tile (after the A/B copies that read
  // the old pointers have issued — except the deferred breaker, which
  // still reads R4: advance B after group 0 instead).
  W.ins(5, "IADD3 R2, P1, R2, " + hex(C.BlockK * 2) + ", RZ");
  W.ins(2, "IADD3.X R3, R3, RZ, RZ, P1, !PT");

  for (unsigned G = 0; G < D.Groups; ++G) {
    emitHmmaGroup(W, D, G, G == 0 ? Breaker : nullptr, SimtMath);
    if (G == 0 && Breaker)
      ++Next; // The breaker was emitted inside the group.
  }

  // TritonO3 leaves the remaining asynchronous copies at the *bottom* of
  // the body (ptxas spreads LDGSTS through the whole loop, paper
  // Listing 9); their latency then extends straight into the
  // end-of-iteration wait. Hoisting them is the agent's main win.
  for (; Next < Batch.size(); ++Next)
    emitLdgsts(W, Batch[Next].Guarded, false, Batch[Next].SharedBase,
               Batch[Next].SharedOff, Batch[Next].GlobalBase,
               Batch[Next].GlobalOff);
  // The B-pointer advance must follow every copy that reads R4.
  W.ins(5, "IADD3 R4, P2, R4, " + hex(C.BlockK * NBytesRow) + ", RZ");
  W.ins(2, "IADD3.X R5, R5, RZ, RZ, P2, !PT");

  W.ins(4, "IADD3 R8, R8, 0x1, RZ");
  // Wait for this iteration's own async-copy group, then block barrier
  // (the cp.async commit/wait + __syncthreads pipeline idiom).
  W.ins(0x01, -1, -1, false, 1, "BAR.SYNC 0x0");
  W.ins(1, "BRA `(.L_LOOP)");

  // Epilogue: fused activation + per-warp 32B result slice.
  W.label(".L_EPILOG");
  for (unsigned I = 0; I < D.PerGroup; ++I) {
    unsigned Acc = 32 + I;
    switch (Epilogue) {
    case GemmEpilogue::None:
      break;
    case GemmEpilogue::LeakyRelu:
      W.ins(1, "FSETP.GT.AND P2, PT, " + rg(Acc) + ", RZ, PT");
      W.ins(5, "FMUL R40, " + rg(Acc) + ", 0.01");
      W.ins(5, "FSEL " + rg(Acc) + ", " + rg(Acc) + ", R40, P2");
      break;
    case GemmEpilogue::Silu:
      // x * sigmoid(x) via exp2: s = 1/(1+2^(-x*log2e)).
      W.ins(5, "FMUL R40, " + rg(Acc) + ", -1.4427");
      W.ins(0, -1, 5, false, 1, "MUFU.EX2 R41, R40");
      W.ins(0x20, -1, -1, false, 5, "FADD R42, R41, 1.0");
      W.ins(0, -1, 5, false, 1, "MUFU.RCP R43, R42");
      W.ins(0x20, -1, -1, false, 5,
            "FMUL " + rg(Acc) + ", " + rg(Acc) + ", R43");
      break;
    }
  }
  unsigned StoreRegs = std::min(D.PerGroup, 8u);
  W.ins(1, "STG.E.128 [R6.64], R32");
  if (StoreRegs > 4)
    W.ins(1, "STG.E.128 [R6.64+0x10], R36");
  W.ins(1, "EXIT");

  Out.Text = W.take();
  Out.OutBytes =
      static_cast<uint64_t>(Out.GridX) * Out.GridY * Out.GridZ * C.Warps * 32;
  return Out;
}

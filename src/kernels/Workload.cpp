//===- kernels/Workload.cpp -----------------------------------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "kernels/Workload.h"

using namespace cuasmrl;
using namespace cuasmrl::kernels;

std::vector<WorkloadKind> kernels::allWorkloads() {
  return {WorkloadKind::Bmm,      WorkloadKind::FusedFF,
          WorkloadKind::FlashAttention, WorkloadKind::MmLeakyRelu,
          WorkloadKind::Softmax,  WorkloadKind::RmsNorm};
}

std::string kernels::workloadName(WorkloadKind Kind) {
  switch (Kind) {
  case WorkloadKind::FusedFF:
    return "fused_ff";
  case WorkloadKind::MmLeakyRelu:
    return "mmLeakyReLu";
  case WorkloadKind::Bmm:
    return "bmm";
  case WorkloadKind::FlashAttention:
    return "flash-attention";
  case WorkloadKind::Softmax:
    return "softmax";
  case WorkloadKind::RmsNorm:
    return "rmsnorm";
  }
  return "<unknown>";
}

bool kernels::isComputeBound(WorkloadKind Kind) {
  switch (Kind) {
  case WorkloadKind::FusedFF:
  case WorkloadKind::MmLeakyRelu:
  case WorkloadKind::Bmm:
  case WorkloadKind::FlashAttention:
    return true;
  case WorkloadKind::Softmax:
  case WorkloadKind::RmsNorm:
    return false;
  }
  return false;
}

WorkloadShape kernels::paperShape(WorkloadKind Kind) {
  // Table 2.
  WorkloadShape S;
  switch (Kind) {
  case WorkloadKind::FusedFF:
  case WorkloadKind::MmLeakyRelu:
    S.B = 1;
    S.M = 512;
    S.N = 512;
    S.K = 2048;
    break;
  case WorkloadKind::Bmm:
    S.B = 4;
    S.M = 512;
    S.N = 512;
    S.K = 2048;
    break;
  case WorkloadKind::FlashAttention:
    S.B = 1;
    S.NHead = 4;
    S.SeqLen = 4096;
    S.DHead = 32;
    break;
  case WorkloadKind::Softmax:
    S.Rows = 512;
    S.Cols = 4096;
    break;
  case WorkloadKind::RmsNorm:
    // B, n_head, seq_len, d_head = 1, 32, 4096, 64: normalization over
    // the trailing d_head axis -> 32*4096 rows of 64.
    S.Rows = 32 * 64; // Scaled-down row count keeps simulation tractable;
    S.Cols = 256;     // traffic ratios to softmax are preserved.
    break;
  }
  return S;
}

WorkloadShape kernels::testShape(WorkloadKind Kind) {
  WorkloadShape S = paperShape(Kind);
  switch (Kind) {
  case WorkloadKind::FusedFF:
  case WorkloadKind::MmLeakyRelu:
    S.M = 64;
    S.N = 64;
    S.K = 128;
    break;
  case WorkloadKind::Bmm:
    S.B = 2;
    S.M = 64;
    S.N = 64;
    S.K = 128;
    break;
  case WorkloadKind::FlashAttention:
    S.NHead = 1;
    S.SeqLen = 128;
    S.DHead = 32;
    break;
  case WorkloadKind::Softmax:
    S.Rows = 8;
    S.Cols = 256;
    break;
  case WorkloadKind::RmsNorm:
    S.Rows = 16;
    S.Cols = 128;
    break;
  }
  return S;
}

std::string TileConfig::str() const {
  return "BM" + std::to_string(BlockM) + "_BN" + std::to_string(BlockN) +
         "_BK" + std::to_string(BlockK) + "_W" + std::to_string(Warps) +
         "_S" + std::to_string(Stages);
}

std::vector<TileConfig> kernels::candidateConfigs(WorkloadKind Kind) {
  switch (Kind) {
  case WorkloadKind::FusedFF:
  case WorkloadKind::MmLeakyRelu:
  case WorkloadKind::Bmm:
    return {
        {64, 64, 32, 4, 2},  {64, 64, 16, 4, 2}, {32, 32, 32, 4, 2},
        {64, 64, 32, 2, 2},  {64, 64, 32, 4, 1}, {128, 64, 32, 4, 2},
    };
  case WorkloadKind::FlashAttention:
    return {
        {64, 64, 32, 4, 2},
        {32, 32, 32, 4, 2},
        {64, 64, 32, 2, 2},
        {64, 64, 32, 4, 1},
    };
  case WorkloadKind::Softmax:
  case WorkloadKind::RmsNorm:
    // Rowwise kernels: BlockN = columns per iteration chunk, Warps vary.
    return {
        {1, 16, 1, 4, 1},
        {1, 8, 1, 4, 1},
        {1, 16, 1, 2, 1},
        {1, 32, 1, 4, 1},
    };
  }
  return {TileConfig()};
}

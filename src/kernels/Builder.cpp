//===- kernels/Builder.cpp ------------------------------------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "kernels/Builder.h"

#include "gpusim/Fp16.h"
#include "kernels/Generators.h"
#include "sass/Parser.h"

#include <algorithm>
#include <cassert>
#include <cstring>

using namespace cuasmrl;
using namespace cuasmrl::kernels;

namespace {

/// Fills [Addr, Addr+Bytes) with random data: f32 in [-1, 1), or packed
/// fp16x2 pairs of the same range when \p Half. Values stay finite so
/// accumulations never reach inf/NaN and results compare bit-exactly.
void fillRandomFloats(gpusim::Gpu &Device, uint64_t Addr, uint64_t Bytes,
                      Rng &DataRng, bool Half) {
  std::vector<uint8_t> Data(Bytes);
  for (uint64_t Off = 0; Off + 4 <= Bytes; Off += 4) {
    uint32_t Word;
    if (Half) {
      Word = gpusim::packHalf2(
          static_cast<float>(DataRng.uniformReal(-1.0, 1.0)),
          static_cast<float>(DataRng.uniformReal(-1.0, 1.0)));
    } else {
      float F = static_cast<float>(DataRng.uniformReal(-1.0, 1.0));
      std::memcpy(&Word, &F, sizeof(F));
    }
    std::memcpy(Data.data() + Off, &Word, sizeof(Word));
  }
  Device.globalMemory().write(Addr, Data.data(), Bytes);
}

sass::Program parseGenerated(const std::string &Text,
                             const std::string &Name) {
  Expected<sass::Program> P = sass::Parser::parseProgram(Text, Name);
  assert(P.hasValue() && "generator emitted unparsable SASS");
  if (!P) // Release-mode fallback: return an empty (invalid) program.
    return sass::Program(Name);
  return P.takeValue();
}

/// Wires a GenResult into a BuiltKernel with fresh buffers.
BuiltKernel finishKernel(gpusim::Gpu &Device, const GenResult &Gen,
                         const std::string &Name,
                         const std::vector<uint64_t> &InputBytes,
                         Rng &DataRng, bool HalfInputs) {
  BuiltKernel K;
  K.Name = Name;
  K.HalfInputs = HalfInputs;
  K.Prog = parseGenerated(Gen.Text, Name);
  K.Launch.GridX = Gen.GridX;
  K.Launch.GridY = Gen.GridY;
  K.Launch.GridZ = Gen.GridZ;
  K.Launch.WarpsPerBlock = Gen.Warps;
  K.Launch.SharedBytes = Gen.SharedBytes;
  for (uint64_t Bytes : InputBytes) {
    uint64_t Addr = Device.globalMemory().allocate(Bytes);
    K.Inputs.push_back({Addr, Bytes});
    fillRandomFloats(Device, Addr, Bytes, DataRng, HalfInputs);
  }
  K.OutBytes = Gen.OutBytes;
  K.OutAddr = Device.globalMemory().allocate(std::max<uint64_t>(
      K.OutBytes, 4));
  return K;
}

} // namespace

void BuiltKernel::randomizeInputs(gpusim::Gpu &Device, Rng &DataRng) const {
  for (auto [Addr, Bytes] : Inputs)
    fillRandomFloats(Device, Addr, Bytes, DataRng, HalfInputs);
  std::vector<uint8_t> Zero(OutBytes, 0);
  if (OutBytes)
    Device.globalMemory().write(OutAddr, Zero.data(), Zero.size());
}

std::vector<uint32_t> BuiltKernel::readOutput(const gpusim::Gpu &Device) const {
  std::vector<uint32_t> Out(OutBytes / 4);
  if (!Out.empty())
    Device.globalMemory().read(OutAddr, Out.data(), OutBytes);
  return Out;
}

BuiltKernel kernels::buildKernel(gpusim::Gpu &Device, WorkloadKind Kind,
                                 const WorkloadShape &Shape,
                                 const TileConfig &Config,
                                 ScheduleStyle Style, Rng &DataRng) {
  assert(configFits(Kind, Shape, Config) && "configuration does not fit");
  std::string Name = workloadName(Kind) + "_" + Config.str();

  switch (Kind) {
  case WorkloadKind::FusedFF:
  case WorkloadKind::MmLeakyRelu:
  case WorkloadKind::Bmm: {
    GemmEpilogue Epi = Kind == WorkloadKind::FusedFF ? GemmEpilogue::Silu
                       : Kind == WorkloadKind::MmLeakyRelu
                           ? GemmEpilogue::LeakyRelu
                           : GemmEpilogue::None;
    GenResult Gen = genGemm(Shape, Config, Style, Epi);
    uint64_t ABytes = static_cast<uint64_t>(Shape.B) * Shape.M * Shape.K * 2;
    uint64_t BBytes = static_cast<uint64_t>(Shape.B) * Shape.K * Shape.N * 2;
    BuiltKernel K = finishKernel(Device, Gen, Name, {ABytes, BBytes},
                                 DataRng, /*HalfInputs=*/true);
    // A-rows are shared by GridX blocks, B-columns by GridY blocks
    // through the chip-wide L2.
    K.Launch.UniqueDramFraction = std::max(
        0.0625, 0.5 / Gen.GridX + 0.5 / Gen.GridY);
    K.Launch.addParam64(K.Inputs[0].first);
    K.Launch.addParam64(K.Inputs[1].first);
    K.Launch.addParam64(K.OutAddr);
    return K;
  }
  case WorkloadKind::FlashAttention: {
    GenResult Gen = genFlashAttention(Shape, Config, Style);
    uint64_t QkvBytes = static_cast<uint64_t>(Shape.B) * Shape.NHead *
                        Shape.SeqLen * Shape.DHead * 2;
    BuiltKernel K = finishKernel(Device, Gen, Name,
                                 {QkvBytes, QkvBytes, QkvBytes}, DataRng,
                                 /*HalfInputs=*/true);
    // Every query tile of a head re-reads the same K/V stream.
    K.Launch.UniqueDramFraction =
        std::max(0.0625, 1.0 / Gen.GridX);
    K.Launch.addParam64(K.Inputs[0].first); // Q
    K.Launch.addParam64(K.Inputs[1].first); // K
    K.Launch.addParam64(K.Inputs[2].first); // V
    K.Launch.addParam64(K.OutAddr);
    return K;
  }
  case WorkloadKind::Softmax:
  case WorkloadKind::RmsNorm: {
    GenResult Gen = genRowwise(Kind, Shape, Config, Style);
    uint64_t XBytes = static_cast<uint64_t>(Shape.Rows) * Shape.Cols * 4;
    std::vector<uint64_t> Ins = {XBytes};
    if (Kind == WorkloadKind::RmsNorm)
      Ins.push_back(static_cast<uint64_t>(Shape.Cols) * 4); // Weights.
    BuiltKernel K = finishKernel(Device, Gen, Name, Ins, DataRng,
                                 /*HalfInputs=*/false);
    K.Launch.addParam64(K.Inputs[0].first);
    K.Launch.addParam64(K.OutAddr);
    if (Kind == WorkloadKind::RmsNorm)
      K.Launch.addParam64(K.Inputs[1].first);
    return K;
  }
  }
  return BuiltKernel();
}

namespace {

/// Builds one streaming kernel over a Rows x Cols f32 tensor.
BuiltKernel buildStream(gpusim::Gpu &Device, StreamOp Op,
                        const std::string &Name, unsigned Rows,
                        unsigned Cols, Rng &DataRng,
                        uint64_t In2Bytes = 0) {
  GenResult Gen = genStream(Op, Rows, Cols, /*Warps=*/4);
  uint64_t InBytes = static_cast<uint64_t>(Rows) * Cols * 4;
  std::vector<uint64_t> Ins = {InBytes};
  if (In2Bytes)
    Ins.push_back(In2Bytes);
  BuiltKernel K = finishKernel(Device, Gen, Name, Ins, DataRng,
                               /*HalfInputs=*/false);
  K.Launch.addParam64(K.Inputs[0].first);
  K.Launch.addParam64(K.OutAddr);
  if (In2Bytes)
    K.Launch.addParam64(K.Inputs[1].first);
  return K;
}

} // namespace

std::vector<BuiltKernel>
kernels::buildTorchComposition(gpusim::Gpu &Device, WorkloadKind Kind,
                               const WorkloadShape &Shape, Rng &DataRng) {
  std::vector<BuiltKernel> Seq;
  // cuBLAS-class GEMM configuration (the library's tuned kernels).
  TileConfig CublasCfg{64, 64, 32, 4, 2};

  switch (Kind) {
  case WorkloadKind::Bmm:
    // torch.bmm dispatches straight to cuBLAS.
    Seq.push_back(buildKernel(Device, WorkloadKind::Bmm, Shape, CublasCfg,
                              ScheduleStyle::Expert, DataRng));
    Seq.back().Name = "torch_bmm_cublas";
    break;
  case WorkloadKind::MmLeakyRelu: {
    WorkloadShape G = Shape;
    Seq.push_back(buildKernel(Device, WorkloadKind::Bmm, G, CublasCfg,
                              ScheduleStyle::Expert, DataRng));
    Seq.back().Name = "torch_mm_cublas";
    Seq.push_back(buildStream(Device, StreamOp::LeakyRelu,
                              "torch_leaky_relu", Shape.M, Shape.N,
                              DataRng));
    break;
  }
  case WorkloadKind::FusedFF: {
    Seq.push_back(buildKernel(Device, WorkloadKind::Bmm, Shape, CublasCfg,
                              ScheduleStyle::Expert, DataRng));
    Seq.back().Name = "torch_ff_cublas";
    Seq.push_back(
        buildStream(Device, StreamOp::Silu, "torch_silu", Shape.M, Shape.N,
                    DataRng));
    break;
  }
  case WorkloadKind::FlashAttention: {
    // Unfused attention: QK^T writes the full Seq x Seq score matrix to
    // global memory, softmax makes three more passes over it, then PV.
    WorkloadShape Qk;
    Qk.B = Shape.B * Shape.NHead;
    Qk.M = Shape.SeqLen;
    Qk.N = Shape.SeqLen;
    Qk.K = Shape.DHead;
    Seq.push_back(buildKernel(Device, WorkloadKind::Bmm, Qk, CublasCfg,
                              ScheduleStyle::Expert, DataRng));
    Seq.back().Name = "torch_qk_cublas";
    unsigned ScoreRows = Shape.B * Shape.NHead * Shape.SeqLen;
    Seq.push_back(buildStream(Device, StreamOp::RowMax, "torch_row_max",
                              ScoreRows, Shape.SeqLen, DataRng));
    Seq.push_back(buildStream(Device, StreamOp::ExpSum, "torch_exp",
                              ScoreRows, Shape.SeqLen, DataRng));
    Seq.push_back(buildStream(Device, StreamOp::ScaleByRow, "torch_div",
                              ScoreRows, Shape.SeqLen, DataRng,
                              static_cast<uint64_t>(ScoreRows) * 4 * 4));
    WorkloadShape Pv;
    Pv.B = Shape.B * Shape.NHead;
    Pv.M = Shape.SeqLen;
    Pv.N = Shape.DHead;
    Pv.K = Shape.SeqLen;
    TileConfig PvCfg{64, 32, 32, 4, 2};
    Seq.push_back(buildKernel(Device, WorkloadKind::Bmm, Pv, PvCfg,
                              ScheduleStyle::Expert, DataRng));
    Seq.back().Name = "torch_pv_cublas";
    break;
  }
  case WorkloadKind::Softmax: {
    // Safe-softmax decomposition: max, exp(+running sum), divide.
    Seq.push_back(buildStream(Device, StreamOp::RowMax, "torch_row_max",
                              Shape.Rows, Shape.Cols, DataRng));
    Seq.push_back(buildStream(Device, StreamOp::ExpSum, "torch_exp",
                              Shape.Rows, Shape.Cols, DataRng));
    Seq.push_back(buildStream(Device, StreamOp::ScaleByRow, "torch_div",
                              Shape.Rows, Shape.Cols, DataRng,
                              static_cast<uint64_t>(Shape.Rows) * 4 * 4));
    break;
  }
  case WorkloadKind::RmsNorm: {
    // x*x -> tmp; mean reduce; scale; weight multiply.
    Seq.push_back(buildStream(Device, StreamOp::MulElems, "torch_square",
                              Shape.Rows, Shape.Cols, DataRng,
                              static_cast<uint64_t>(Shape.Rows) *
                                  Shape.Cols * 4));
    Seq.push_back(buildStream(Device, StreamOp::SquareSum, "torch_mean",
                              Shape.Rows, Shape.Cols, DataRng));
    Seq.push_back(buildStream(Device, StreamOp::ScaleByRow, "torch_scale",
                              Shape.Rows, Shape.Cols, DataRng,
                              static_cast<uint64_t>(Shape.Rows) * 4 * 4));
    Seq.push_back(buildStream(Device, StreamOp::MulElems, "torch_weight",
                              Shape.Rows, Shape.Cols, DataRng,
                              static_cast<uint64_t>(Shape.Rows) *
                                  Shape.Cols * 4));
    break;
  }
  }
  return Seq;
}

BuiltKernel kernels::buildCutlassDefault(gpusim::Gpu &Device,
                                         WorkloadKind Kind,
                                         const WorkloadShape &Shape,
                                         Rng &DataRng) {
  // Cutlass's untuned default: tiny tiles, one warp, no pipelining
  // (§5.3: without the autotuner, "very limited performance").
  TileConfig Default{16, 16, 16, 1, 1};
  GemmEpilogue Epi = Kind == WorkloadKind::FusedFF ? GemmEpilogue::Silu
                     : Kind == WorkloadKind::MmLeakyRelu
                         ? GemmEpilogue::LeakyRelu
                         : GemmEpilogue::None;
  GenResult Gen = genGemm(Shape, Default, ScheduleStyle::TritonO3, Epi,
                          /*SimtMath=*/true);
  uint64_t ABytes = static_cast<uint64_t>(Shape.B) * Shape.M * Shape.K * 2;
  uint64_t BBytes = static_cast<uint64_t>(Shape.B) * Shape.K * Shape.N * 2;
  std::string Name = "cutlass_default_" + workloadName(Kind);
  BuiltKernel K;
  {
    Rng &R = DataRng;
    K = BuiltKernel();
    GenResult &G = Gen;
    // Reuse the generic wiring below.
    (void)R;
    (void)G;
  }
  K.Name = Name;
  Expected<sass::Program> P = sass::Parser::parseProgram(Gen.Text, Name);
  assert(P.hasValue() && "cutlass generator emitted unparsable SASS");
  K.Prog = P.takeValue();
  K.Launch.GridX = Gen.GridX;
  K.Launch.GridY = Gen.GridY;
  K.Launch.GridZ = Gen.GridZ;
  K.Launch.WarpsPerBlock = Gen.Warps;
  K.Launch.SharedBytes = Gen.SharedBytes;
  for (uint64_t Bytes : {ABytes, BBytes}) {
    uint64_t Addr = Device.globalMemory().allocate(Bytes);
    K.Inputs.push_back({Addr, Bytes});
  }
  K.OutBytes = Gen.OutBytes;
  K.OutAddr = Device.globalMemory().allocate(std::max<uint64_t>(K.OutBytes, 4));
  K.HalfInputs = true;
  K.randomizeInputs(Device, DataRng);
  K.Launch.UniqueDramFraction =
      std::max(0.0625, 0.5 / Gen.GridX + 0.5 / Gen.GridY);
  K.Launch.addParam64(K.Inputs[0].first);
  K.Launch.addParam64(K.Inputs[1].first);
  K.Launch.addParam64(K.OutAddr);
  return K;
}

//===- kernels/Workload.h - Evaluated workloads (paper Table 2) --------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The six LLM kernels the paper evaluates (Table 2), their input
/// shapes, and the kernel-configuration grids the hierarchical search
/// enumerates (§3.1: tile sizes can change throughput by up to 2x and
/// completely change the emitted SASS).
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_KERNELS_WORKLOAD_H
#define CUASMRL_KERNELS_WORKLOAD_H

#include <string>
#include <vector>

namespace cuasmrl {
namespace kernels {

/// The evaluated kernels.
enum class WorkloadKind {
  FusedFF,        ///< Fused feed-forward (GEMM + SiLU epilogue).
  MmLeakyRelu,    ///< Fused GEMM + LeakyReLU epilogue.
  Bmm,            ///< Batch matrix multiplication.
  FlashAttention, ///< Fused attention (tiled online softmax).
  Softmax,        ///< Row-wise softmax (memory bound).
  RmsNorm,        ///< Root-mean-square layer norm (memory bound).
};

/// All kinds, in the paper's Figure 6 order.
std::vector<WorkloadKind> allWorkloads();

/// Short display name ("bmm", "fused_ff", ...).
std::string workloadName(WorkloadKind Kind);

/// True for the kernels the paper classes as compute-bound.
bool isComputeBound(WorkloadKind Kind);

/// Input shape. Fields are interpreted per kind:
///  - GEMM family: B x (M x K) @ (K x N)
///  - flash-attention: B, NHead, SeqLen, DHead
///  - softmax/rmsnorm: Rows x Cols
struct WorkloadShape {
  unsigned B = 1;
  unsigned M = 512;
  unsigned N = 512;
  unsigned K = 2048;
  unsigned NHead = 4;
  unsigned SeqLen = 4096;
  unsigned DHead = 32;
  unsigned Rows = 512;
  unsigned Cols = 4096;
};

/// The paper's Table 2 configuration for \p Kind.
WorkloadShape paperShape(WorkloadKind Kind);

/// A reduced shape for unit tests (same structure, ~100x less work).
WorkloadShape testShape(WorkloadKind Kind);

/// Tunable kernel configuration (the autotuner's search space).
struct TileConfig {
  unsigned BlockM = 64;
  unsigned BlockN = 64;
  unsigned BlockK = 32;
  unsigned Warps = 4;
  unsigned Stages = 2;

  std::string str() const;
  bool operator==(const TileConfig &O) const {
    return BlockM == O.BlockM && BlockN == O.BlockN && BlockK == O.BlockK &&
           Warps == O.Warps && Stages == O.Stages;
  }
};

/// The user-provided configuration grid for \p Kind (§3.1).
///
/// Thread-safety: pure — returns a freshly built vector from compile-
/// time constants, no shared mutable state; safe to call concurrently
/// from any number of sweep workers (likewise configFits()).
std::vector<TileConfig> candidateConfigs(WorkloadKind Kind);

/// Scheduling quality of the generated SASS.
enum class ScheduleStyle {
  TritonO3, ///< ptxas -O3-like: good, but with the residual slack the
            ///< paper's RL agent discovers (§5.7).
  Expert,   ///< Hand-optimized placement (cuBLAS / FlashAttention-2 /
            ///< MaxAs-style manual scheduling).
};

} // namespace kernels
} // namespace cuasmrl

#endif // CUASMRL_KERNELS_WORKLOAD_H

//===- kernels/AsmWriter.h - Textual SASS emission helper --------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The kernel generators emit CuAssembler-style text and parse it into a
/// `sass::Program`, which keeps the generated code human-inspectable and
/// exercises exactly the same path a disassembled cubin takes.
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_KERNELS_ASMWRITER_H
#define CUASMRL_KERNELS_ASMWRITER_H

#include <cstdint>
#include <cstdio>
#include <string>

namespace cuasmrl {
namespace kernels {

/// Accumulates SASS text lines.
class AsmWriter {
public:
  /// Emits a label line.
  void label(const std::string &Name) { Text += Name + ":\n"; }

  /// Emits one instruction with an explicit control code.
  ///
  /// \param WaitMask bitmask of scoreboard slots to wait on.
  /// \param Read read-barrier slot or -1.
  /// \param Write write-barrier slot or -1.
  /// \param Yield scheduler yield hint.
  /// \param Stall issue stall count.
  /// \param Body instruction text without the trailing ';'.
  void ins(uint8_t WaitMask, int Read, int Write, bool Yield,
           unsigned Stall, const std::string &Body) {
    char Ctrl[32];
    char WaitField[7];
    for (int Slot = 0; Slot < 6; ++Slot)
      WaitField[Slot] =
          (WaitMask >> Slot) & 1 ? static_cast<char>('0' + Slot) : '-';
    WaitField[6] = '\0';
    std::snprintf(Ctrl, sizeof(Ctrl), "[B%s:R%c:W%c:%c:S%02u]", WaitField,
                  Read < 0 ? '-' : static_cast<char>('0' + Read),
                  Write < 0 ? '-' : static_cast<char>('0' + Write),
                  Yield ? 'Y' : '-', Stall);
    Text += "  ";
    Text += Ctrl;
    Text += ' ';
    Text += Body;
    Text += " ;\n";
  }

  /// Shorthand: no waits/barriers/yield, just a stall count.
  void ins(unsigned Stall, const std::string &Body) {
    ins(0, -1, -1, false, Stall, Body);
  }

  /// Shorthand: wait on some slots with a stall count.
  void insWait(uint8_t WaitMask, unsigned Stall, const std::string &Body) {
    ins(WaitMask, -1, -1, false, Stall, Body);
  }

  const std::string &text() const { return Text; }
  std::string take() { return std::move(Text); }

private:
  std::string Text;
};

/// Register spelling helpers used throughout the generators.
inline std::string rg(unsigned Index) { return "R" + std::to_string(Index); }
inline std::string hex(uint64_t Value) {
  char Buffer[24];
  std::snprintf(Buffer, sizeof(Buffer), "0x%llx",
                static_cast<unsigned long long>(Value));
  return Buffer;
}
/// Constant-bank parameter word at byte offset \p Offset from the
/// parameter base (0x160).
inline std::string param(unsigned Offset) {
  return "c[0x0][" + hex(0x160 + Offset) + "]";
}

} // namespace kernels
} // namespace cuasmrl

#endif // CUASMRL_KERNELS_ASMWRITER_H

//===- kernels/Generators.h - Internal SASS generators (private) -------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Private codegen entry points used by Builder.cpp. Each generator
/// returns CuAssembler-style text plus launch geometry. The TritonO3
/// style deliberately reproduces the scheduling artifacts the paper
/// attributes to ptxas -O3 (and that its RL agent removes):
///
///  - an LDGSTS with the yield hint parked *between* two HMMAs whose
///    shared `.reuse` operand it invalidates (§5.7.1 / Figure 9),
///  - an always-false predicated LDS (@!PT) sitting *above* an LDGSTS
///    (§5.7.2 / Figure 13),
///  - loads placed immediately before their consumers in the rowwise
///    kernels (no software prefetch distance).
///
/// The Expert style emits the same instruction multiset optimally
/// placed — the target the agent should rediscover.
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_KERNELS_GENERATORS_H
#define CUASMRL_KERNELS_GENERATORS_H

#include "kernels/Workload.h"

#include <cstdint>
#include <string>

namespace cuasmrl {
namespace kernels {

/// Geometry a generator decides for its launch.
struct GenResult {
  std::string Text;       ///< SASS text for sass::Parser.
  unsigned GridX = 1, GridY = 1, GridZ = 1;
  unsigned Warps = 4;
  uint32_t SharedBytes = 0;
  /// Output bytes the kernel writes (per-warp result slices).
  uint64_t OutBytes = 0;
};

/// Pipelined tiled GEMM with optional fused epilogue.
/// Parameters land at c[0x0][0x160]: A ptr, B ptr, Out ptr (8B each).
enum class GemmEpilogue { None, LeakyRelu, Silu };
/// \p SimtMath replaces each tensor-core HMMA with a burst of scalar
/// FFMAs (the SIMT fallback path untuned Cutlass configurations take).
GenResult genGemm(const WorkloadShape &Shape, const TileConfig &Config,
                  ScheduleStyle Style, GemmEpilogue Epilogue,
                  bool SimtMath = false);

/// Fused attention over KV tiles with online softmax.
/// Params: Q ptr, K ptr, V ptr, Out ptr.
GenResult genFlashAttention(const WorkloadShape &Shape,
                            const TileConfig &Config, ScheduleStyle Style);

/// Fused two-pass rowwise kernels (softmax / rmsnorm).
/// Params: X ptr, Out ptr, W ptr (rmsnorm only).
GenResult genRowwise(WorkloadKind Kind, const WorkloadShape &Shape,
                     const TileConfig &Config, ScheduleStyle Style);

/// Streaming single-pass kernels used by the Torch-eager compositions.
/// Params: In ptr, Out ptr, In2 ptr.
enum class StreamOp {
  LeakyRelu,   ///< out[i] = lrelu(in[i])
  Silu,        ///< out[i] = silu(in[i])
  SquareSum,   ///< out[row] = sum(in[i]^2)  (one value per row)
  RowMax,      ///< out[row] = max(in[i])
  ExpSum,      ///< out[i] = exp2(in[i]); out2[row] = sum
  ScaleByRow,  ///< out[i] = in[i] * in2[row]
  MulElems,    ///< out[i] = in[i] * in2[i]
};
GenResult genStream(StreamOp Op, unsigned Rows, unsigned Cols,
                    unsigned Warps);

/// True when \p Config tiles fit \p Shape for \p Kind.
bool configFits(WorkloadKind Kind, const WorkloadShape &Shape,
                const TileConfig &Config);

} // namespace kernels
} // namespace cuasmrl

#endif // CUASMRL_KERNELS_GENERATORS_H

//===- kernels/FlashGen.cpp - Fused attention codegen --------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// Tiled attention with online softmax (FlashAttention-style): per block
/// one query tile; the KV loop double-buffers K/V tiles through shared
/// memory with LDGSTS, computes QK^T with tensor-core HMMAs, maintains
/// the running row max/normalizer with FMNMX/MUFU.EX2, rescales the
/// output accumulators, and accumulates PV.
///
/// Register map (additions over GemmGen):
///   R44..R47  Q fragments (loaded once by the prologue)
///   R60 running max, R61 running normalizer, R62/R63 softmax temps
///   R64..R67  probability fragments (exp results)
///   R32..R35  QK^T score accumulators;  R36..R39 output accumulators
///
//===----------------------------------------------------------------------===//

#include "kernels/Generators.h"

#include "kernels/AsmWriter.h"

#include <algorithm>

using namespace cuasmrl;
using namespace cuasmrl::kernels;

namespace {

unsigned nextPow2(unsigned X) {
  unsigned P = 1;
  while (P < X)
    P <<= 1;
  return P;
}

} // namespace

GenResult kernels::genFlashAttention(const WorkloadShape &S,
                                     const TileConfig &C,
                                     ScheduleStyle Style) {
  const unsigned HeadBytes = S.SeqLen * S.DHead * 2; // One head's K or V.
  const unsigned RowBytes = S.DHead * 2;
  const unsigned KTileBytes = C.BlockN * RowBytes;
  const unsigned VTileBytes = KTileBytes;
  const unsigned StageStride = nextPow2(KTileBytes + VTileBytes);
  const bool Pipelined = C.Stages >= 2;
  const unsigned NumK = std::max(1u, KTileBytes / C.Warps / 512);
  const unsigned NumV = std::max(1u, VTileBytes / C.Warps / 512);
  const unsigned KvIters = std::max(1u, S.SeqLen / C.BlockN);

  GenResult Out;
  Out.GridX = std::max(1u, S.SeqLen / C.BlockM);
  Out.GridY = S.NHead;
  Out.GridZ = S.B;
  Out.Warps = C.Warps;
  Out.SharedBytes = std::max(1u, C.Stages) * StageStride;

  AsmWriter W;

  // ---- prologue ----------------------------------------------------------
  W.ins(0, -1, 0, false, 1, "S2R R0, SR_CTAID.X");
  W.ins(0, -1, 1, false, 1, "S2R R1, SR_CTAID.Y");
  W.ins(0, -1, 2, false, 1, "S2R R29, SR_CTAID.Z");
  W.ins(0, -1, 3, false, 1, "S2R R28, SR_TID.X");
  W.ins(0x0f, -1, -1, false, 4, "SHF.R.U32 R28, R28, 0x5, RZ");

  W.ins(1, "MOV R2, " + param(8));   // K pointer.
  W.ins(1, "MOV R3, " + param(12));
  W.ins(1, "MOV R4, " + param(16));  // V pointer.
  W.ins(1, "MOV R5, " + param(20));
  W.ins(1, "MOV R6, " + param(24));  // Out pointer.
  W.ins(1, "MOV R10, " + param(0));  // Q pointer (temp).
  W.ins(4, "MOV R11, " + param(4));
  W.ins(4, "MOV R7, " + param(28));

  // Head offset: (ctaidZ*NHead + ctaidY) * Seq*DHead*2.
  W.ins(5, "IMAD R20, R29, " + hex(S.NHead) + ", R1");
  W.ins(5, "IMAD R20, R20, " + hex(HeadBytes) + ", RZ");
  // K/V += head offset + warp slice of the tile rows.
  W.ins(5, "IMAD R21, R28, " + hex((C.BlockN / C.Warps) * RowBytes) +
               ", R20");
  W.ins(5, "IADD3 R2, P1, R2, R21, RZ");
  W.ins(2, "IADD3.X R3, R3, RZ, RZ, P1, !PT");
  W.ins(5, "IADD3 R4, P2, R4, R21, RZ");
  W.ins(2, "IADD3.X R5, R5, RZ, RZ, P2, !PT");

  // Q fragment address: head + (ctaidX*BM + warp*(BM/W)) * DHead*2.
  W.ins(5, "IMAD R22, R0, " + hex(C.BlockM * RowBytes) + ", R20");
  W.ins(5, "IMAD R22, R28, " + hex((C.BlockM / C.Warps) * RowBytes) +
               ", R22");
  W.ins(5, "IADD3 R10, P1, R10, R22, RZ");
  W.ins(2, "IADD3.X R11, R11, RZ, RZ, P1, !PT");
  W.ins(0, -1, 5, false, 1, "LDG.E.128 R44, desc[UR16][R10.64]");

  // Out += flatBlock*Warps*32 + warp*32.
  W.ins(5, "IMAD R22, R29, " + hex(S.NHead) + ", R1");
  W.ins(5, "IMAD R22, R22, " + hex(Out.GridX) + ", R0");
  W.ins(5, "IMAD R22, R22, " + hex(C.Warps * 32) + ", RZ");
  W.ins(5, "IMAD R22, R28, 0x20, R22");
  W.ins(5, "IADD3 R6, P1, R6, R22, RZ");
  W.ins(2, "IADD3.X R7, R7, RZ, RZ, P1, !PT");

  // Shared bases: K region at 0, V region after it.
  W.ins(5, "IMAD R16, R28, " + hex(KTileBytes / C.Warps) + ", RZ");
  W.ins(5, "IMAD R18, R28, " + hex(VTileBytes / C.Warps) + ", " +
               hex(KTileBytes));
  W.ins(4, "SHF.R.U32 R23, R28, 0x1, RZ");
  unsigned ReadBias = Pipelined ? StageStride : 0;
  W.ins(5, "IMAD R17, R23, " + hex(KTileBytes / C.Warps) + ", " +
               hex(ReadBias));
  W.ins(5, "IMAD R19, R23, " + hex(VTileBytes / C.Warps) + ", " +
               hex(KTileBytes + ReadBias));

  // Online-softmax state: m = -inf, l = 0; zero accumulators.
  W.ins(1, "MOV R60, 0xff800000");
  W.ins(1, "MOV R61, 0x0");
  W.ins(1, "MOV R8, 0x0");
  W.ins(1, "MOV R9, " + hex(KvIters));
  W.ins(1, "MOV R26, " + hex(KvIters - 1));
  for (unsigned Acc = 32; Acc < 40; ++Acc)
    W.ins(Acc == 39 ? 4 : 1, "MOV " + rg(Acc) + ", 0x0");

  struct Copy {
    unsigned SharedBase, SharedOff, GlobalBase, GlobalOff;
  };
  auto MakeBatch = [&](bool UseTemps) {
    unsigned KBase = UseTemps ? 12 : 2;
    unsigned VBase = UseTemps ? 14 : 4;
    std::vector<Copy> Batch;
    for (unsigned J = 0; J < NumK; ++J)
      Batch.push_back({16, J * 0x200, KBase, J * 4 * RowBytes});
    for (unsigned J = 0; J < NumV; ++J)
      Batch.push_back({18, J * 0x200, VBase, J * 4 * RowBytes});
    return Batch;
  };
  auto EmitCopy = [&](const Copy &Cp, bool Guarded, bool Yield) {
    std::string Body;
    if (Guarded)
      Body += "@P3 ";
    Body += "LDGSTS.E.BYPASS.128 [" + rg(Cp.SharedBase);
    if (Cp.SharedOff)
      Body += "+" + hex(Cp.SharedOff);
    Body += "], desc[UR16][" + rg(Cp.GlobalBase) + ".64";
    if (Cp.GlobalOff)
      Body += "+" + hex(Cp.GlobalOff);
    Body += "]";
    W.ins(0, -1, 0, Yield, 2, Body);
  };

  if (Pipelined) {
    for (const Copy &Cp : MakeBatch(false))
      EmitCopy(Cp, false, false);
    // Wait for the stage-0 copies (B0) and the Q fragments (B5).
    W.ins(0x21, -1, -1, false, 1, "BAR.SYNC 0x0");
  }

  // ---- KV loop ------------------------------------------------------------
  W.label(".L_LOOP");
  W.ins(5, "ISETP.GE.AND P0, PT, R8, R9, PT");
  W.ins(1, "@P0 BRA `(.L_EPILOG)");

  std::vector<Copy> Batch;
  const Copy *Breaker = nullptr;
  size_t Next = 0;
  if (Pipelined) {
    W.ins(4, "LOP3.LUT R16, R16, " + hex(StageStride) + ", RZ, 0x3c, !PT");
    W.ins(4, "LOP3.LUT R18, R18, " + hex(StageStride) + ", RZ, 0x3c, !PT");
    W.ins(4, "LOP3.LUT R17, R17, " + hex(StageStride) + ", RZ, 0x3c, !PT");
    W.ins(4, "LOP3.LUT R19, R19, " + hex(StageStride) + ", RZ, 0x3c, !PT");
    W.ins(5, "ISETP.LT.AND P3, PT, R8, R26, PT");
    W.ins(5, "IMAD.WIDE R12, RZ, RZ, R2");
    W.ins(5, "IMAD.WIDE R14, RZ, RZ, R4");
    Batch = MakeBatch(true);
    if (Style == ScheduleStyle::Expert) {
      for (const Copy &Cp : Batch)
        EmitCopy(Cp, true, false);
      Next = Batch.size();
      W.ins(1, "@!PT LDS.128 R24, [R19+0x10]");
    } else {
      EmitCopy(Batch[0], true, false);
      ++Next;
      W.ins(1, "@!PT LDS.128 R24, [R19+0x10]"); // Figure 13 artifact.
      if (Next < Batch.size() && Batch[Next].SharedBase == 16) {
        EmitCopy(Batch[Next], true, false);
        ++Next;
      }
      if (Next < Batch.size())
        Breaker = &Batch[Next]; // First V copy breaks the QK reuse pair.
    }
  } else {
    for (const Copy &Cp : MakeBatch(false))
      EmitCopy(Cp, false, false);
    // Waits the copies (B0) and, on the first iteration, the Q
    // fragments (B5).
    W.ins(0x21, -1, -1, false, 1, "BAR.SYNC 0x0");
  }

  // QK^T group: K fragments + HMMAs into the score accumulators.
  W.ins(0, -1, 3, false, 1, "LDS.128 R52, [R17]");
  W.ins(0, -1, 4, false, 1, "LDS.128 R56, [R17+0x20]");
  for (unsigned I = 0; I < 4; ++I) {
    unsigned A = 44 + I / 2;
    unsigned B = (I % 2 ? 56 : 52) + I / 2;
    uint8_t Wait = I == 0 ? 0x18 : 0x00;
    // The tail HMMA gets a long stall so the FMNMX chain below reads
    // committed scores (HMMA latency is 7).
    unsigned Stall = I == 3 ? 5 : 2;
    W.ins(Wait, -1, -1, false, Stall,
          "HMMA.16816.F32 " + rg(32 + I) + ", " + rg(A) + ".reuse, " +
              rg(B) + ", " + rg(32 + I));
    if (I == 0 && Breaker) {
      EmitCopy(*Breaker, true, /*Yield=*/true);
      ++Next;
    }
  }
  // The K pointer may advance now: every K copy has issued.
  W.ins(5, "IADD3 R2, P1, R2, " + hex(C.BlockN * RowBytes) + ", RZ");
  W.ins(2, "IADD3.X R3, R3, RZ, RZ, P1, !PT");

  // Online softmax: save old max, fold in new scores, correction factor.
  W.ins(1, "MOV R63, R60");
  W.ins(2, "FMNMX R62, R32, R33, !PT");
  W.ins(5, "FMNMX R59, R34, R35, !PT");
  W.ins(5, "FMNMX R62, R62, R59, !PT");
  W.ins(5, "FMNMX R60, R60, R62, !PT");
  W.ins(5, "FADD R62, R63, -R60");
  W.ins(0, -1, 5, false, 1, "MUFU.EX2 R62, R62");
  // Probability fragments: exp(score - m).
  W.ins(1, "FADD R64, R32, -R60");
  W.ins(1, "FADD R65, R33, -R60");
  W.ins(1, "FADD R66, R34, -R60");
  W.ins(5, "FADD R67, R35, -R60");
  W.ins(0, -1, 5, false, 1, "MUFU.EX2 R64, R64");
  W.ins(0, -1, 5, false, 1, "MUFU.EX2 R65, R65");
  W.ins(0, -1, 5, false, 1, "MUFU.EX2 R66, R66");
  W.ins(0, -1, 5, false, 1, "MUFU.EX2 R67, R67");
  // Rescale the output accumulators and the normalizer by the
  // correction, then fold the new probabilities into l.
  W.ins(0x20, -1, -1, false, 1, "FMUL R36, R36, R62");
  W.ins(1, "FMUL R37, R37, R62");
  W.ins(1, "FMUL R38, R38, R62");
  W.ins(1, "FMUL R39, R39, R62");
  W.ins(5, "FMUL R61, R61, R62");
  W.ins(1, "FADD R62, R64, R65");
  W.ins(5, "FADD R63, R66, R67");
  W.ins(5, "FADD R62, R62, R63");
  W.ins(5, "FADD R61, R61, R62");
  // Reset the score accumulators for the next tile.
  for (unsigned I = 0; I < 4; ++I)
    W.ins(1, "MOV " + rg(32 + I) + ", 0x0");

  // PV group: V fragments + HMMAs into the output accumulators.
  W.ins(0, -1, 3, false, 1, "LDS.128 R52, [R19]");
  W.ins(0, -1, 4, false, 1, "LDS.128 R56, [R19+0x20]");
  for (unsigned I = 0; I < 4; ++I) {
    unsigned A = 64 + I / 2;
    unsigned B = (I % 2 ? 56 : 52) + I / 2;
    uint8_t Wait = I == 0 ? 0x18 : 0x00;
    W.ins(Wait, -1, -1, false, 2,
          "HMMA.16816.F32 " + rg(36 + I) + ", " + rg(A) + ".reuse, " +
              rg(B) + ", " + rg(36 + I));
  }

  // TritonO3 leaves the remaining V copies here, at the bottom of the
  // body; Expert issued everything up front.
  for (; Next < Batch.size(); ++Next)
    EmitCopy(Batch[Next], true, false);
  // The V pointer advances only after every V copy has read it.
  W.ins(5, "IADD3 R4, P2, R4, " + hex(C.BlockN * RowBytes) + ", RZ");
  W.ins(2, "IADD3.X R5, R5, RZ, RZ, P2, !PT");

  W.ins(4, "IADD3 R8, R8, 0x1, RZ");
  W.ins(0x01, -1, -1, false, 1, "BAR.SYNC 0x0");
  W.ins(1, "BRA `(.L_LOOP)");

  // ---- epilogue: scale by 1/l and store the per-warp slice --------------
  W.label(".L_EPILOG");
  W.ins(0, -1, 5, false, 1, "MUFU.RCP R62, R61");
  W.ins(0x20, -1, -1, false, 1, "FMUL R36, R36, R62");
  W.ins(1, "FMUL R37, R37, R62");
  W.ins(1, "FMUL R38, R38, R62");
  W.ins(5, "FMUL R39, R39, R62");
  W.ins(1, "STG.E.128 [R6.64], R36");
  W.ins(1, "EXIT");

  Out.Text = W.take();
  Out.OutBytes = static_cast<uint64_t>(Out.GridX) * Out.GridY * Out.GridZ *
                 C.Warps * 32;
  return Out;
}

//===- core/GameEnvAdapter.h - AssemblyGame as an rl::Env --------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Adapts the assembly game to the Gym-like surface PPO consumes
/// (§3.7: "the reordering process is encapsulated in the environment
/// transition, which followed the standardized Gym interface").
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_CORE_GAMEENVADAPTER_H
#define CUASMRL_CORE_GAMEENVADAPTER_H

#include "env/AssemblyGame.h"
#include "rl/Env.h"

#include <cassert>
#include <memory>
#include <utility>

namespace cuasmrl {
namespace core {

/// Thin adapter; non-owning by default, or owning when handed the game
/// by unique_ptr (the RolloutRunner env-pool case, where the runner
/// must keep its games alive). Exposes the game's split-step interface
/// as rl::LockstepEnv, so the serial rollout path can advance sibling
/// games' reward measurements through one gpusim batch round.
class GameEnvAdapter : public rl::Env, public rl::LockstepEnv {
public:
  explicit GameEnvAdapter(env::AssemblyGame &Game) : Game(Game) {}
  explicit GameEnvAdapter(std::unique_ptr<env::AssemblyGame> Owned)
      : OwnedGame((assert(Owned && "owning adapter needs a game"),
                   std::move(Owned))),
        Game(*OwnedGame) {}

  std::vector<float> reset() override { return Game.reset(); }

  rl::EnvStep step(unsigned Action) override {
    return toEnvStep(Game.step(Action));
  }

  std::vector<uint8_t> actionMask() override { return Game.actionMask(); }
  unsigned actionCount() const override { return Game.actionCount(); }
  size_t obsRows() const override { return Game.obsRows(); }
  size_t obsFeatures() const override { return Game.obsFeatures(); }
  rl::LockstepEnv *lockstep() override { return this; }

  /// \name rl::LockstepEnv
  /// @{
  void beginStep(unsigned Action) override { Game.beginStep(Action); }
  void measureBatch(const std::vector<rl::LockstepEnv *> &Pending) override {
    // Peel the assembly games out of the pending set; foreign concrete
    // types (mixed pools exist only in tests) advance themselves.
    std::vector<env::AssemblyGame *> Games;
    Games.reserve(Pending.size());
    for (rl::LockstepEnv *P : Pending) {
      if (auto *A = dynamic_cast<GameEnvAdapter *>(P))
        Games.push_back(&A->Game);
      else if (P && P != this)
        P->measureBatch({P});
    }
    env::AssemblyGame::measureLockstep(Games);
  }
  rl::EnvStep finishStep() override { return toEnvStep(Game.finishStep()); }
  /// @}

  env::AssemblyGame &game() { return Game; }

private:
  static rl::EnvStep toEnvStep(env::AssemblyGame::StepResult R) {
    rl::EnvStep Out;
    Out.Obs = std::move(R.Observation);
    Out.Reward = R.Reward;
    Out.Done = R.Done;
    return Out;
  }

  std::unique_ptr<env::AssemblyGame> OwnedGame; ///< Null when non-owning.
  env::AssemblyGame &Game;
};

} // namespace core
} // namespace cuasmrl

#endif // CUASMRL_CORE_GAMEENVADAPTER_H

//===- core/Optimizer.cpp ----------------------------------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "core/Optimizer.h"

#include "core/GameEnvAdapter.h"
#include "support/Logging.h"

#include <memory>
#include <thread>

using namespace cuasmrl;
using namespace cuasmrl::core;

Optimizer::Optimizer(OptimizeConfig C) : Config(std::move(C)) {}

triton::AutotuneOptions Optimizer::autotuneOptions() const {
  triton::AutotuneOptions O;
  O.Measure = Config.AutotuneMeasure;
  O.Workers = Config.AutotuneWorkers;
  O.BaseSeed = Config.AutotuneSeed;
  return O;
}

OptimizeResult Optimizer::optimize(gpusim::Gpu &Device,
                                   kernels::WorkloadKind Kind,
                                   const kernels::WorkloadShape &Shape,
                                   Rng &DataRng,
                                   const support::CancelToken *Cancel)
    const {
  // Level 1: kernel-configuration search (§3.1). The configurations can
  // be worth up to 2x and completely change the SASS the agent sees.
  triton::AutotuneOptions TunerOpts = autotuneOptions();
  TunerOpts.Cancel = Cancel;
  triton::Autotuner Tuner(TunerOpts);
  triton::AutotuneResult Tuned = Tuner.tune(Device, Kind, Shape);
  if (!Tuned.Valid) {
    // No candidate fit the shape (or every measurement faulted): there
    // is no meaningful configuration to compile, so surface the failure
    // instead of training on a default-constructed "winner".
    OptimizeResult Failed;
    Failed.AutotuneValid = false;
    return Failed;
  }

  // Between-stage checkpoint: don't start compiling a cubin nobody
  // will wait for.
  if (Cancel)
    Cancel->checkpoint();

  // Compile at the winning configuration and intercept the cubin.
  triton::CompiledKernel Compiled =
      triton::compileKernel(Device, Kind, Shape, Tuned.Best, DataRng);

  OptimizeResult Result = optimizeSchedule(Device, Compiled.Runtime,
                                           DataRng, Cancel);
  Result.BestConfig = Tuned.Best;

  // Substitute the optimized kernel section back into the binary.
  Result.Kernel = std::move(Compiled);
  if (Result.Verified)
    triton::substituteSchedule(Result.Kernel, Result.OptimizedProg);
  return Result;
}

OptimizeResult
Optimizer::optimizeSchedule(gpusim::Gpu &Device,
                            const kernels::BuiltKernel &Kernel,
                            Rng &DataRng,
                            const support::CancelToken *Cancel) const {
  OptimizeResult Result;

  // Level 2: the assembly game (§3.3). One game per vectorized env.
  // Every game shares one schedule->latency cache; when rollouts run on
  // worker threads each game gets a private device copy (the simulator
  // mutates memory/cache state).
  const unsigned NumEnvs = std::max(1u, Config.NumEnvs);
  unsigned Workers =
      support::ThreadPool::resolveWorkerCount(Config.RolloutWorkers, NumEnvs);

  std::shared_ptr<gpusim::MeasurementCache> SharedCache;
  if (Config.Game.CacheMeasurements)
    SharedCache =
        std::make_shared<gpusim::MeasurementCache>(Config.Game.Measure.Seed);

  std::vector<std::unique_ptr<rl::Env>> Envs;
  std::vector<GameEnvAdapter *> Adapters;
  for (unsigned E = 0; E < NumEnvs; ++E) {
    env::GameConfig GC = Config.Game;
    GC.SharedCache = SharedCache;
    // Training rollouts never read the §5.7 trace (playGreedy resets
    // the winning game before replaying); skip the per-step string
    // rendering and re-enable recording just for the replay below.
    GC.RecordTrace = false;
    // Private whenever sibling games exist — not just when threaded:
    // siblings sharing one device would see each other's cache/memory
    // state, making measurements depend on the (worker-count-shaped)
    // interleaving and breaking the stats-identical-for-any-Workers
    // contract.
    GC.PrivateDevice = NumEnvs > 1;
    auto Adapter = std::make_unique<GameEnvAdapter>(
        std::make_unique<env::AssemblyGame>(Device, Kernel, GC));
    Adapters.push_back(Adapter.get());
    Envs.push_back(std::move(Adapter));
  }

  rl::RolloutConfig RC;
  RC.Workers = Workers;
  RC.Seed = Config.Ppo.Seed;
  RC.Cancel = Cancel;
  rl::RolloutRunner Runner(std::move(Envs), RC);
  rl::PpoTrainer Trainer(Runner, Config.Ppo);
  Trainer.setCancel(Cancel);
  Result.Training = Trainer.train();
  Result.EpisodeReturns = Trainer.episodicReturns();

  // Best schedule across every game (the paper deploys the best cubin
  // found "throughout the assembly game", §4.2).
  env::AssemblyGame *BestGame = &Adapters.front()->game();
  for (GameEnvAdapter *A : Adapters)
    if (A->game().bestTimeUs() < BestGame->bestTimeUs())
      BestGame = &A->game();
  Result.TritonUs = BestGame->initialTimeUs();
  Result.OptimizedUs = BestGame->bestTimeUs();
  Result.OptimizedProg = BestGame->best();

  // Deterministic inference replay for the §5.7 move traces.
  BestGame->setTraceRecording(Config.Game.RecordTrace);
  GameEnvAdapter Probe(*BestGame);
  Trainer.playGreedy(Probe, Config.Game.EpisodeLength);
  Result.Trace = BestGame->trace();
  if (BestGame->bestTimeUs() < Result.OptimizedUs) {
    Result.OptimizedUs = BestGame->bestTimeUs();
    Result.OptimizedProg = BestGame->best();
  }

  // Measurement-cost accounting (§7) — after the replay so its cache
  // traffic and simulations are included.
  for (GameEnvAdapter *A : Adapters) {
    Result.KernelExecutions += A->game().measurementsTaken();
    // Per-stage simulator counters; summed across games the total is
    // independent of which sibling ran a shared-cache measurement.
    Result.RolloutCounters += A->game().simCounters();
  }
  if (SharedCache)
    SharedCache->accumulate(Result.RolloutCounters);

  // Between-stage checkpoint before the verification rounds.
  if (Cancel)
    Cancel->checkpoint();

  // Probabilistic testing of the winning schedule (§4.1).
  Result.Verified =
      triton::probabilisticTest(Device, Kernel, Kernel.Prog,
                                Result.OptimizedProg,
                                Config.ProbTestRounds, DataRng);
  return Result;
}

std::vector<triton::AutotuneResult>
Optimizer::autotuneAll(const gpusim::Gpu &Device,
                       const std::vector<triton::SweepRequest> &Requests,
                       triton::DeployCache *Deploy,
                       const std::string &GpuType,
                       DeployStats *Stats) const {
  triton::Autotuner Tuner(autotuneOptions());
  std::vector<triton::AutotuneResult> Results =
      Tuner.sweepAll(Device, Requests);

  if (Deploy) {
    for (size_t I = 0; I < Requests.size(); ++I) {
      const triton::AutotuneResult &R = Results[I];
      if (!R.Valid)
        continue; // Nothing meaningful to persist.
      // Compile the winner on a private device copy with a seed fixed
      // by (AutotuneSeed, request index) — the Rng only randomizes
      // buffer contents, so the persisted cubin is byte-identical
      // regardless — and store it under a key that pins GPU, workload,
      // shape and config.
      gpusim::Gpu Local(Device);
      Rng DataRng(mixSeed(Config.AutotuneSeed, I));
      triton::CompiledKernel Compiled = triton::compileKernel(
          Local, Requests[I].Kind, Requests[I].Shape, R.Best, DataRng);
      std::string Key = triton::DeployCache::makeKey(
          GpuType,
          triton::Autotuner::requestKey(Requests[I].Kind, Requests[I].Shape),
          R.Best.str());
      if (Stats)
        ++Stats->Attempted;
      if (Deploy->store(Key, Compiled.Binary)) {
        if (Stats)
          ++Stats->Stored;
      } else {
        // A dropped winner means deployment quietly falls back to
        // training — always say so, and let batch callers count it.
        logWarn("autotuneAll: failed to persist winner cubin for key '" +
                Key + "' (unwritable deploy directory?)");
        if (Stats)
          ++Stats->Failures;
      }
    }
  }
  return Results;
}

//===- core/Optimizer.cpp ----------------------------------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "core/Optimizer.h"

#include "analysis/OperandTable.h"
#include "core/GameEnvAdapter.h"
#include "support/Logging.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <sstream>
#include <thread>

using namespace cuasmrl;
using namespace cuasmrl::core;

Optimizer::Optimizer(OptimizeConfig C) : Config(std::move(C)) {}

namespace {

/// The post-training tail shared by optimizeSchedule() and
/// optimizeMany(): best-schedule selection across \p Adapters, the
/// deterministic greedy replay (§5.7), measurement-cost accounting and
/// the probabilistic test — all scoped to ONE workload's game pool.
void finishWorkload(const OptimizeConfig &Config, gpusim::Gpu &Device,
                    const kernels::BuiltKernel &Kernel,
                    rl::PpoTrainer &Trainer,
                    const std::vector<GameEnvAdapter *> &Adapters,
                    gpusim::MeasurementCache *SharedCache, Rng &DataRng,
                    const support::CancelToken *Cancel,
                    OptimizeResult &Result) {
  // Best schedule across every game (the paper deploys the best cubin
  // found "throughout the assembly game", §4.2).
  env::AssemblyGame *BestGame = &Adapters.front()->game();
  for (GameEnvAdapter *A : Adapters)
    if (A->game().bestTimeUs() < BestGame->bestTimeUs())
      BestGame = &A->game();
  Result.TritonUs = BestGame->initialTimeUs();
  Result.OptimizedUs = BestGame->bestTimeUs();
  Result.OptimizedProg = BestGame->best();

  // Deterministic inference replay for the §5.7 move traces.
  BestGame->setTraceRecording(Config.Game.RecordTrace);
  GameEnvAdapter Probe(*BestGame);
  Trainer.playGreedy(Probe, Config.Game.EpisodeLength);
  Result.Trace = BestGame->trace();
  if (BestGame->bestTimeUs() < Result.OptimizedUs) {
    Result.OptimizedUs = BestGame->bestTimeUs();
    Result.OptimizedProg = BestGame->best();
  }

  // Measurement-cost accounting (§7) — after the replay so its cache
  // traffic and simulations are included.
  for (GameEnvAdapter *A : Adapters) {
    Result.KernelExecutions += A->game().measurementsTaken();
    // Per-stage simulator counters; summed across games the total is
    // independent of which sibling ran a shared-cache measurement.
    Result.RolloutCounters += A->game().simCounters();
  }
  if (SharedCache)
    SharedCache->accumulate(Result.RolloutCounters);

  // Between-stage checkpoint before the verification rounds.
  if (Cancel)
    Cancel->checkpoint();

  // Probabilistic testing of the winning schedule (§4.1).
  Result.Verified =
      triton::probabilisticTest(Device, Kernel, Kernel.Prog,
                                Result.OptimizedProg, Config.ProbTestRounds,
                                DataRng);
}

} // namespace

triton::AutotuneOptions Optimizer::autotuneOptions() const {
  triton::AutotuneOptions O;
  O.Measure = Config.AutotuneMeasure;
  O.Workers = Config.AutotuneWorkers;
  O.BaseSeed = Config.AutotuneSeed;
  return O;
}

OptimizeResult Optimizer::optimize(gpusim::Gpu &Device,
                                   kernels::WorkloadKind Kind,
                                   const kernels::WorkloadShape &Shape,
                                   Rng &DataRng,
                                   const support::CancelToken *Cancel,
                                   const std::string *WarmStartPolicy,
                                   const std::string &GpuType) const {
  // Level 1: kernel-configuration search (§3.1). The configurations can
  // be worth up to 2x and completely change the SASS the agent sees.
  triton::AutotuneOptions TunerOpts = autotuneOptions();
  TunerOpts.Cancel = Cancel;
  triton::Autotuner Tuner(TunerOpts);
  triton::AutotuneResult Tuned = Tuner.tune(Device, Kind, Shape);
  if (!Tuned.Valid) {
    // No candidate fit the shape (or every measurement faulted): there
    // is no meaningful configuration to compile, so surface the failure
    // instead of training on a default-constructed "winner".
    OptimizeResult Failed;
    Failed.AutotuneValid = false;
    return Failed;
  }

  // Between-stage checkpoint: don't start compiling a cubin nobody
  // will wait for.
  if (Cancel)
    Cancel->checkpoint();

  // Compile at the winning configuration and intercept the cubin.
  triton::CompiledKernel Compiled =
      triton::compileKernel(Device, Kind, Shape, Tuned.Best, DataRng);

  // The conditioning block carries the workload identity into the
  // observation when the generalist format is requested.
  std::optional<env::WorkloadContext> Ctx;
  if (Config.ConditionEmbedding) {
    Ctx.emplace();
    Ctx->Kind = Kind;
    Ctx->Shape = Shape;
    Ctx->GpuType = GpuType;
  }

  OptimizeResult Result =
      optimizeSchedule(Device, Compiled.Runtime, DataRng, Cancel,
                       WarmStartPolicy, Ctx ? &*Ctx : nullptr);
  Result.BestConfig = Tuned.Best;

  // Substitute the optimized kernel section back into the binary.
  Result.Kernel = std::move(Compiled);
  if (Result.Verified)
    triton::substituteSchedule(Result.Kernel, Result.OptimizedProg);
  return Result;
}

OptimizeResult
Optimizer::optimizeSchedule(gpusim::Gpu &Device,
                            const kernels::BuiltKernel &Kernel,
                            Rng &DataRng,
                            const support::CancelToken *Cancel,
                            const std::string *WarmStartPolicy,
                            const env::WorkloadContext *Context) const {
  OptimizeResult Result;

  // Level 2: the assembly game (§3.3). One game per vectorized env.
  // Every game shares one schedule->latency cache; when rollouts run on
  // worker threads each game gets a private device copy (the simulator
  // mutates memory/cache state).
  const unsigned NumEnvs = std::max(1u, Config.NumEnvs);
  unsigned Workers =
      support::ThreadPool::resolveWorkerCount(Config.RolloutWorkers, NumEnvs);

  std::shared_ptr<gpusim::MeasurementCache> SharedCache;
  if (Config.Game.CacheMeasurements)
    SharedCache =
        std::make_shared<gpusim::MeasurementCache>(Config.Game.Measure.Seed);

  std::vector<std::unique_ptr<rl::Env>> Envs;
  std::vector<GameEnvAdapter *> Adapters;
  for (unsigned E = 0; E < NumEnvs; ++E) {
    env::GameConfig GC = Config.Game;
    GC.SharedCache = SharedCache;
    if (Context)
      GC.Context = *Context;
    // Training rollouts never read the §5.7 trace (playGreedy resets
    // the winning game before replaying); skip the per-step string
    // rendering and re-enable recording just for the replay below.
    GC.RecordTrace = false;
    // Private whenever sibling games exist — not just when threaded:
    // siblings sharing one device would see each other's cache/memory
    // state, making measurements depend on the (worker-count-shaped)
    // interleaving and breaking the stats-identical-for-any-Workers
    // contract.
    GC.PrivateDevice = NumEnvs > 1;
    auto Adapter = std::make_unique<GameEnvAdapter>(
        std::make_unique<env::AssemblyGame>(Device, Kernel, GC));
    Adapters.push_back(Adapter.get());
    Envs.push_back(std::move(Adapter));
  }

  rl::RolloutConfig RC;
  RC.Workers = Workers;
  RC.Seed = Config.Ppo.Seed;
  RC.Cancel = Cancel;
  rl::RolloutRunner Runner(std::move(Envs), RC);
  rl::PpoTrainer Trainer(Runner, Config.Ppo);
  Trainer.setCancel(Cancel);
  if (WarmStartPolicy && !WarmStartPolicy->empty())
    Result.WarmStartTensors = Trainer.warmStartFrom(*WarmStartPolicy);
  Result.Training = Trainer.train();
  Result.EpisodeReturns = Trainer.episodicReturns();

  finishWorkload(Config, Device, Kernel, Trainer, Adapters,
                 SharedCache.get(), DataRng, Cancel, Result);

  std::ostringstream Blob;
  Trainer.net().save(Blob);
  Result.PolicyBlob = Blob.str();
  return Result;
}

MultiOptimizeResult
Optimizer::optimizeMany(gpusim::Gpu &Device,
                        const std::vector<WorkloadRequest> &Requests,
                        Rng &DataRng, const support::CancelToken *Cancel,
                        const std::string *WarmStartPolicy,
                        const std::string &GpuType) const {
  MultiOptimizeResult Multi;
  Multi.Results.resize(Requests.size());
  if (Requests.empty())
    return Multi;

  // Level 1 per request: configuration search + compile at the winner.
  triton::AutotuneOptions TunerOpts = autotuneOptions();
  TunerOpts.Cancel = Cancel;
  triton::Autotuner Tuner(TunerOpts);

  struct BuiltReq {
    size_t Req;
    triton::CompiledKernel Kernel;
  };
  std::vector<BuiltReq> Built;
  for (size_t I = 0; I < Requests.size(); ++I) {
    triton::AutotuneResult Tuned =
        Tuner.tune(Device, Requests[I].Kind, Requests[I].Shape);
    if (!Tuned.Valid) {
      // No meaningful configuration: exclude from training, surface the
      // failure in place (mirrors the single-workload path).
      Multi.Results[I].AutotuneValid = false;
      continue;
    }
    if (Cancel)
      Cancel->checkpoint();
    Multi.Results[I].BestConfig = Tuned.Best;
    Built.push_back({I, triton::compileKernel(Device, Requests[I].Kind,
                                              Requests[I].Shape, Tuned.Best,
                                              DataRng)});
  }
  if (Built.empty())
    return Multi;

  // Curriculum order: smallest compiled program first (easier games
  // earlier), request index as the deterministic tie-break.
  std::sort(Built.begin(), Built.end(),
            [](const BuiltReq &A, const BuiltReq &B) {
              size_t SA = A.Kernel.Runtime.Prog.size();
              size_t SB = B.Kernel.Runtime.Prog.size();
              return SA != SB ? SA < SB : A.Req < B.Req;
            });
  for (const BuiltReq &B : Built)
    Multi.Curriculum.push_back(B.Req);

  // The conditioned embedding pads every workload's operand features to
  // the pool maximum so every observation shares one feature width.
  size_t OperandSlots = 0;
  for (const BuiltReq &B : Built)
    OperandSlots = std::max(
        OperandSlots,
        analysis::OperandTable::build(B.Kernel.Runtime.Prog).maxOperands());

  // One env pool per workload, each with its own measurement cache
  // (mirroring optimizeSchedule's per-run cache), all conditioned.
  const unsigned PerWorkload = std::max(1u, Config.NumEnvs);
  const size_t TotalEnvs = PerWorkload * Built.size();
  unsigned Workers =
      support::ThreadPool::resolveWorkerCount(Config.RolloutWorkers,
                                              TotalEnvs);

  struct WorkloadPool {
    size_t Req;
    triton::CompiledKernel *Kernel; ///< Into Built (stable after sort).
    std::shared_ptr<gpusim::MeasurementCache> Cache;
    std::vector<GameEnvAdapter *> Adapters;
  };
  std::vector<std::unique_ptr<rl::Env>> Envs; ///< Curriculum order.
  std::vector<WorkloadPool> Pools;
  for (BuiltReq &B : Built) {
    WorkloadPool P;
    P.Req = B.Req;
    P.Kernel = &B.Kernel;
    if (Config.Game.CacheMeasurements)
      P.Cache = std::make_shared<gpusim::MeasurementCache>(
          Config.Game.Measure.Seed);
    for (unsigned E = 0; E < PerWorkload; ++E) {
      env::GameConfig GC = Config.Game;
      GC.SharedCache = P.Cache;
      GC.RecordTrace = false;
      // Private whenever sibling games exist (see optimizeSchedule).
      GC.PrivateDevice = TotalEnvs > 1;
      env::WorkloadContext Ctx;
      Ctx.Kind = Requests[B.Req].Kind;
      Ctx.Shape = Requests[B.Req].Shape;
      Ctx.GpuType = GpuType;
      Ctx.OperandSlots = OperandSlots;
      GC.Context = Ctx;
      auto Adapter = std::make_unique<GameEnvAdapter>(
          std::make_unique<env::AssemblyGame>(Device, B.Kernel.Runtime,
                                              GC));
      P.Adapters.push_back(Adapter.get());
      Envs.push_back(std::move(Adapter));
    }
    Pools.push_back(std::move(P));
  }

  std::vector<rl::Env *> AllEnvs;
  for (const std::unique_ptr<rl::Env> &E : Envs)
    AllEnvs.push_back(E.get());

  rl::RolloutConfig RC;
  RC.Workers = Workers;
  RC.Seed = Config.Ppo.Seed;
  RC.Cancel = Cancel;

  // The trainer's net is sized from the FULL mixed pool (max rows, max
  // actions, the shared feature width) — phase runners over subsets
  // then fit by construction.
  rl::RolloutRunner FullRunner(AllEnvs, RC);
  rl::PpoTrainer Trainer(FullRunner, Config.Ppo);
  Trainer.setCancel(Cancel);
  if (WarmStartPolicy && !WarmStartPolicy->empty())
    Multi.WarmStartTensors = Trainer.warmStartFrom(*WarmStartPolicy);

  // Curriculum phases: phase p trains on the cumulative pool of the
  // p+1 smallest workloads; the step budget splits evenly with the
  // remainder on the final (full-pool) phase. Each phase gets a fresh
  // runner — construction resets its envs and re-derives the per-slot
  // Rng streams from (Seed, slot), so the whole schedule is a pure
  // function of the request set and seeds, worker count aside.
  const size_t Phases = Pools.size();
  const unsigned Total = std::max(1u, Config.Ppo.TotalSteps);
  const unsigned PerPhase = static_cast<unsigned>(Total / Phases);
  for (size_t P = 0; P < Phases; ++P) {
    const bool Final = P + 1 == Phases;
    unsigned PhaseSteps =
        Final ? Total - PerPhase * static_cast<unsigned>(Phases - 1)
              : PerPhase;
    if (PhaseSteps == 0)
      continue;
    std::vector<rl::Env *> PhaseEnvs(
        AllEnvs.begin(),
        AllEnvs.begin() + static_cast<long>((P + 1) * PerWorkload));
    rl::RolloutRunner PhaseRunner(PhaseEnvs, RC);
    std::vector<rl::UpdateStats> Series =
        Trainer.trainOn(PhaseRunner, PhaseSteps);
    Multi.Training.insert(Multi.Training.end(), Series.begin(),
                          Series.end());
  }
  Multi.EpisodeReturns = Trainer.episodicReturns();

  std::ostringstream Blob;
  Trainer.net().save(Blob);
  Multi.PolicyBlob = Blob.str();

  // Per-workload tail: best schedule, greedy replay, accounting,
  // probabilistic test, binary substitution — identical to optimize().
  for (WorkloadPool &P : Pools) {
    OptimizeResult &R = Multi.Results[P.Req];
    finishWorkload(Config, Device, P.Kernel->Runtime, Trainer, P.Adapters,
                   P.Cache.get(), DataRng, Cancel, R);
    R.PolicyBlob = Multi.PolicyBlob;
    R.WarmStartTensors = Multi.WarmStartTensors;
    R.Kernel = std::move(*P.Kernel);
    if (R.Verified)
      triton::substituteSchedule(R.Kernel, R.OptimizedProg);
  }
  return Multi;
}

std::vector<triton::AutotuneResult>
Optimizer::autotuneAll(const gpusim::Gpu &Device,
                       const std::vector<triton::SweepRequest> &Requests,
                       triton::DeployCache *Deploy,
                       const std::string &GpuType,
                       DeployStats *Stats) const {
  triton::Autotuner Tuner(autotuneOptions());
  std::vector<triton::AutotuneResult> Results =
      Tuner.sweepAll(Device, Requests);

  if (Deploy) {
    for (size_t I = 0; I < Requests.size(); ++I) {
      const triton::AutotuneResult &R = Results[I];
      if (!R.Valid)
        continue; // Nothing meaningful to persist.
      // Compile the winner on a private device copy with a seed fixed
      // by (AutotuneSeed, request index) — the Rng only randomizes
      // buffer contents, so the persisted cubin is byte-identical
      // regardless — and store it under a key that pins GPU, workload,
      // shape and config.
      gpusim::Gpu Local(Device);
      Rng DataRng(mixSeed(Config.AutotuneSeed, I));
      triton::CompiledKernel Compiled = triton::compileKernel(
          Local, Requests[I].Kind, Requests[I].Shape, R.Best, DataRng);
      std::string Key = triton::DeployCache::makeKey(
          GpuType,
          triton::Autotuner::requestKey(Requests[I].Kind, Requests[I].Shape),
          R.Best.str());
      if (Stats)
        ++Stats->Attempted;
      if (Deploy->store(Key, Compiled.Binary)) {
        if (Stats)
          ++Stats->Stored;
      } else {
        // A dropped winner means deployment quietly falls back to
        // training — always say so, and let batch callers count it.
        logWarn("autotuneAll: failed to persist winner cubin for key '" +
                Key + "' (unwritable deploy directory?)");
        if (Stats)
          ++Stats->Failures;
      }
    }
  }
  return Results;
}

//===- core/Optimizer.cpp ----------------------------------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "core/Optimizer.h"

#include "core/GameEnvAdapter.h"

#include <memory>

using namespace cuasmrl;
using namespace cuasmrl::core;

Optimizer::Optimizer(OptimizeConfig C) : Config(std::move(C)) {}

OptimizeResult Optimizer::optimize(gpusim::Gpu &Device,
                                   kernels::WorkloadKind Kind,
                                   const kernels::WorkloadShape &Shape,
                                   Rng &DataRng) {
  // Level 1: kernel-configuration search (§3.1). The configurations can
  // be worth up to 2x and completely change the SASS the agent sees.
  triton::Autotuner Tuner(Config.AutotuneMeasure);
  triton::AutotuneResult Tuned = Tuner.tune(Device, Kind, Shape, DataRng);

  // Compile at the winning configuration and intercept the cubin.
  triton::CompiledKernel Compiled =
      triton::compileKernel(Device, Kind, Shape, Tuned.Best, DataRng);

  OptimizeResult Result = optimizeSchedule(Device, Compiled.Runtime,
                                           DataRng);
  Result.BestConfig = Tuned.Best;

  // Substitute the optimized kernel section back into the binary.
  Result.Kernel = std::move(Compiled);
  if (Result.Verified)
    triton::substituteSchedule(Result.Kernel, Result.OptimizedProg);
  return Result;
}

OptimizeResult
Optimizer::optimizeSchedule(gpusim::Gpu &Device,
                            const kernels::BuiltKernel &Kernel,
                            Rng &DataRng) {
  OptimizeResult Result;

  // Level 2: the assembly game (§3.3). One game per vectorized env; all
  // share the device and the kernel's buffers.
  std::vector<std::unique_ptr<env::AssemblyGame>> Games;
  std::vector<std::unique_ptr<GameEnvAdapter>> Adapters;
  std::vector<rl::Env *> Envs;
  for (unsigned E = 0; E < std::max(1u, Config.NumEnvs); ++E) {
    Games.push_back(
        std::make_unique<env::AssemblyGame>(Device, Kernel, Config.Game));
    Adapters.push_back(std::make_unique<GameEnvAdapter>(*Games.back()));
    Envs.push_back(Adapters.back().get());
  }

  rl::PpoTrainer Trainer(Envs, Config.Ppo);
  Result.Training = Trainer.train();
  Result.EpisodeReturns = Trainer.episodicReturns();

  // Best schedule across every game (the paper deploys the best cubin
  // found "throughout the assembly game", §4.2).
  env::AssemblyGame *BestGame = Games.front().get();
  for (auto &G : Games)
    if (G->bestTimeUs() < BestGame->bestTimeUs())
      BestGame = G.get();
  Result.TritonUs = BestGame->initialTimeUs();
  Result.OptimizedUs = BestGame->bestTimeUs();
  Result.OptimizedProg = BestGame->best();
  for (auto &G : Games)
    Result.KernelExecutions += G->measurementsTaken();

  // Deterministic inference replay for the §5.7 move traces.
  GameEnvAdapter Probe(*BestGame);
  Trainer.playGreedy(Probe, Config.Game.EpisodeLength);
  Result.Trace = BestGame->trace();
  if (BestGame->bestTimeUs() < Result.OptimizedUs) {
    Result.OptimizedUs = BestGame->bestTimeUs();
    Result.OptimizedProg = BestGame->best();
  }

  // Probabilistic testing of the winning schedule (§4.1).
  Result.Verified =
      triton::probabilisticTest(Device, Kernel, Kernel.Prog,
                                Result.OptimizedProg,
                                Config.ProbTestRounds, DataRng);
  return Result;
}

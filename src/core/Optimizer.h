//===- core/Optimizer.h - The CuAsmRL optimizer facade (Figure 2) ------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The end-to-end hierarchical workflow of Figure 2: the autotuner finds
/// the optimal kernel configuration, the compilation pipeline emits a
/// cubin, the cubin is intercepted and disassembled, the RL agent plays
/// the assembly game over the SASS schedule, and the best schedule found
/// is probabilistically tested and substituted back into the binary.
/// `@cuasmrl.jit`'s one-line integration maps to a single optimize()
/// call here.
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_CORE_OPTIMIZER_H
#define CUASMRL_CORE_OPTIMIZER_H

#include "env/AssemblyGame.h"
#include "rl/Ppo.h"
#include "triton/Autotuner.h"
#include "triton/DeployCache.h"
#include "triton/Pipeline.h"

namespace cuasmrl {
namespace core {

/// Knobs for one optimization run. Users "may add more arguments to
/// specify the hyperparameters of the RL agents" (§4.1).
///
/// When adding a result-relevant field (anything that changes what
/// optimize() produces, as opposed to how fast), also append it to
/// configDigest() in serve/OptimizationService.cpp — the serving
/// layer keys deployed cubins by that digest, and an omitted field
/// would alias distinct deployments to one key.
struct OptimizeConfig {
  rl::PpoConfig Ppo;
  env::GameConfig Game;
  /// Parallel game instances feeding PPO (vectorized envs). All games
  /// of one run share a MeasurementCache, so sibling episodes never
  /// re-simulate an already-measured schedule.
  unsigned NumEnvs = 1;
  /// Worker threads collecting rollouts; 0 = min(NumEnvs, hardware
  /// concurrency). Training statistics are identical for every value
  /// (per-env Rng streams + order-invariant cache seeding) — this is a
  /// wall-clock knob only. This knob — not Ppo.Workers — governs the
  /// optimizer path: the optimizer hands PpoTrainer an external
  /// RolloutRunner, and Ppo.Workers only applies when the trainer
  /// builds its own runner from raw env pointers.
  unsigned RolloutWorkers = 0;
  /// Probabilistic-testing rounds on the final schedule (§4.1).
  unsigned ProbTestRounds = 3;
  /// Measurement protocol for the autotuner.
  gpusim::MeasureConfig AutotuneMeasure = triton::Autotuner::defaultMeasure();
  /// Worker threads for the autotune sweep (level 1); 1 = serial,
  /// 0 = hardware concurrency. Sweep results are bit-identical for
  /// every value — a wall-clock knob only.
  unsigned AutotuneWorkers = 1;
  /// Base seed of the sweep's per-candidate data/noise streams.
  uint64_t AutotuneSeed = 7;
  /// Condition the observation embedding on the workload identity
  /// (kernel-kind one-hot, log-scaled shape dims, GPU type) — the
  /// generalist-policy observation format. Result-relevant: the agent
  /// trains on different observations, so this field is part of
  /// configDigest() in serve/OptimizationService.cpp. optimizeMany()
  /// always conditions (a shared policy needs the workload identity in
  /// the observation) regardless of this flag.
  bool ConditionEmbedding = false;
};

/// Everything one run produces.
struct OptimizeResult {
  /// False when the level-1 sweep produced no valid configuration (no
  /// candidate fits the shape, or every measurement faulted); the run
  /// stops before compilation and every other field is default.
  bool AutotuneValid = true;
  kernels::TileConfig BestConfig; ///< Autotuner winner (§3.1).
  double TritonUs = 0.0;          ///< -O3 schedule at the best config.
  double OptimizedUs = 0.0;       ///< Best schedule the agent found.
  sass::Program OptimizedProg;
  triton::CompiledKernel Kernel;  ///< Binary with the substituted text.
  std::vector<rl::UpdateStats> Training; ///< Figure 8/12 series.
  std::vector<double> EpisodeReturns;
  std::vector<env::AppliedAction> Trace; ///< Greedy replay (§5.7).
  bool Verified = false;                 ///< Probabilistic test passed.
  unsigned KernelExecutions = 0;         ///< Measurement cost (§7).
  /// Rollout-wide counter aggregate: shared measurement-cache
  /// accounting (MeasureCacheHits/Misses) plus the per-stage simulator
  /// counters summed over every game's own measurements (select /
  /// fetch / execute / writeback families, selectHitRate()).
  gpusim::PerfCounters RolloutCounters;
  /// The trained policy, serialized (rl::ActorCritic::save) — the
  /// warm-start source for later near-shape runs (serve::PolicyStore).
  std::string PolicyBlob;
  /// Tensors transferred from the warm-start checkpoint this run was
  /// given (rl::ActorCritic::loadCompatible); 0 = cold start.
  size_t WarmStartTensors = 0;

  double speedup() const {
    return OptimizedUs > 0 ? TritonUs / OptimizedUs : 1.0;
  }
};

/// Persistence accounting for a deploy-cache-backed run: how many
/// winners were attempted, stored, and silently-droppable-no-more
/// failed (unwritable directory, I/O errors). Callers that hand a
/// DeployCache to autotuneAll() should surface Failures instead of
/// assuming every winner landed.
struct DeployStats {
  unsigned Attempted = 0;
  unsigned Stored = 0;
  unsigned Failures = 0;
};

/// One workload in an optimizeMany() batch.
struct WorkloadRequest {
  kernels::WorkloadKind Kind = kernels::WorkloadKind::Softmax;
  kernels::WorkloadShape Shape;
};

/// What a shared cross-kernel run produces: per-request results (in
/// request order — each carries the shared PolicyBlob and its own
/// schedule, verification and accounting) plus the joint training
/// series.
struct MultiOptimizeResult {
  std::vector<OptimizeResult> Results;
  /// Joint PPO series over every curriculum phase, concatenated in
  /// phase order (per-request Training stays empty — the policy is
  /// shared, so there is no per-workload series to report).
  std::vector<rl::UpdateStats> Training;
  std::vector<double> EpisodeReturns;
  /// The generalist policy (identical to every result's PolicyBlob).
  std::string PolicyBlob;
  /// Curriculum order: request indices sorted by compiled program size
  /// ascending (phase p trains on the first p+1 entries' env pools).
  std::vector<size_t> Curriculum;
  /// Tensors transferred from the warm-start checkpoint; 0 = cold.
  size_t WarmStartTensors = 0;
};

/// The optimizer.
///
/// Thread-safety: an Optimizer is immutable after construction — every
/// entry point is const and builds its own transient state — so one
/// instance may be shared by any number of threads as long as each
/// call owns its \p Device and \p DataRng (the optimization service
/// hands every worker a private Gpu copy and a per-job Rng stream).
class Optimizer {
public:
  explicit Optimizer(OptimizeConfig Config = OptimizeConfig());

  /// Runs the full hierarchical optimization for one workload. When
  /// \p Cancel is non-null, the run polls it at cooperative
  /// checkpoints — per autotune candidate, per rollout slot, per PPO
  /// epoch, between stages — and a tripped token unwinds with
  /// support::CancelledError (partial results are discarded; the
  /// autotuner's single-flight keys are reclaimed, never poisoned).
  ///
  /// \p WarmStartPolicy, when non-null and non-empty, is a serialized
  /// policy (OptimizeResult::PolicyBlob) to initialize training from;
  /// every geometry-compatible tensor transfers, the rest keep their
  /// fresh init (see OptimizeResult::WarmStartTensors). \p GpuType
  /// only labels the conditioning block when
  /// OptimizeConfig::ConditionEmbedding is set.
  OptimizeResult optimize(gpusim::Gpu &Device, kernels::WorkloadKind Kind,
                          const kernels::WorkloadShape &Shape,
                          Rng &DataRng,
                          const support::CancelToken *Cancel = nullptr,
                          const std::string *WarmStartPolicy = nullptr,
                          const std::string &GpuType = "A100-SIM") const;

  /// Plays the assembly game on an already-built kernel (the inner
  /// level only; used when the configuration is fixed). \p Context,
  /// when non-null, overrides GameConfig::Context for every game
  /// (optimize() builds it from the workload identity when
  /// ConditionEmbedding is set).
  OptimizeResult optimizeSchedule(gpusim::Gpu &Device,
                                  const kernels::BuiltKernel &Kernel,
                                  Rng &DataRng,
                                  const support::CancelToken *Cancel =
                                      nullptr,
                                  const std::string *WarmStartPolicy =
                                      nullptr,
                                  const env::WorkloadContext *Context =
                                      nullptr) const;

  /// Shared cross-kernel training (the generalist policy): autotunes
  /// and compiles every request, then trains ONE conditioned policy
  /// over the union of their env pools with a size curriculum — phases
  /// ordered by compiled program size ascending, phase p training on
  /// the cumulative pool of the p+1 smallest workloads, with the PPO
  /// step budget (Ppo.TotalSteps) split evenly across phases and LR
  /// annealing spanning the whole run. Every game embeds with the
  /// conditioned observation format (workload one-hot + log-scaled
  /// shape + \p GpuType) padded to the pool-wide operand-slot maximum,
  /// so one net serves all. Greedy replay, best-schedule selection and
  /// probabilistic testing then run per workload exactly as in
  /// optimize(). Requests whose autotune sweep is invalid are excluded
  /// from training and returned with AutotuneValid = false.
  ///
  /// Determinism matches optimize(): results are bit-identical for any
  /// RolloutWorkers value.
  MultiOptimizeResult
  optimizeMany(gpusim::Gpu &Device,
               const std::vector<WorkloadRequest> &Requests, Rng &DataRng,
               const support::CancelToken *Cancel = nullptr,
               const std::string *WarmStartPolicy = nullptr,
               const std::string &GpuType = "A100-SIM") const;

  /// Level-1-only batch API: tunes every request in one parallel,
  /// deterministic sweep (Config.AutotuneWorkers / AutotuneSeed) and,
  /// when \p Deploy is non-null, compiles each valid winner and
  /// persists its cubin under
  /// makeKey(GpuType, workloadName, Autotuner::requestKey + config).
  /// Results are returned in request order; invalid sweeps (see
  /// AutotuneResult::Valid) are returned but never persisted. Store
  /// failures are logged, counted in \p Stats (when non-null), and
  /// never abort the remaining requests.
  std::vector<triton::AutotuneResult>
  autotuneAll(const gpusim::Gpu &Device,
              const std::vector<triton::SweepRequest> &Requests,
              triton::DeployCache *Deploy = nullptr,
              const std::string &GpuType = "A100-SIM",
              DeployStats *Stats = nullptr) const;

  const OptimizeConfig &config() const { return Config; }

private:
  triton::AutotuneOptions autotuneOptions() const;

  OptimizeConfig Config;
};

} // namespace core
} // namespace cuasmrl

#endif // CUASMRL_CORE_OPTIMIZER_H

//===- core/Optimizer.h - The CuAsmRL optimizer facade (Figure 2) ------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The end-to-end hierarchical workflow of Figure 2: the autotuner finds
/// the optimal kernel configuration, the compilation pipeline emits a
/// cubin, the cubin is intercepted and disassembled, the RL agent plays
/// the assembly game over the SASS schedule, and the best schedule found
/// is probabilistically tested and substituted back into the binary.
/// `@cuasmrl.jit`'s one-line integration maps to a single optimize()
/// call here.
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_CORE_OPTIMIZER_H
#define CUASMRL_CORE_OPTIMIZER_H

#include "env/AssemblyGame.h"
#include "rl/Ppo.h"
#include "triton/Autotuner.h"
#include "triton/DeployCache.h"
#include "triton/Pipeline.h"

namespace cuasmrl {
namespace core {

/// Knobs for one optimization run. Users "may add more arguments to
/// specify the hyperparameters of the RL agents" (§4.1).
///
/// When adding a result-relevant field (anything that changes what
/// optimize() produces, as opposed to how fast), also append it to
/// configDigest() in serve/OptimizationService.cpp — the serving
/// layer keys deployed cubins by that digest, and an omitted field
/// would alias distinct deployments to one key.
struct OptimizeConfig {
  rl::PpoConfig Ppo;
  env::GameConfig Game;
  /// Parallel game instances feeding PPO (vectorized envs). All games
  /// of one run share a MeasurementCache, so sibling episodes never
  /// re-simulate an already-measured schedule.
  unsigned NumEnvs = 1;
  /// Worker threads collecting rollouts; 0 = min(NumEnvs, hardware
  /// concurrency). Training statistics are identical for every value
  /// (per-env Rng streams + order-invariant cache seeding) — this is a
  /// wall-clock knob only. This knob — not Ppo.Workers — governs the
  /// optimizer path: the optimizer hands PpoTrainer an external
  /// RolloutRunner, and Ppo.Workers only applies when the trainer
  /// builds its own runner from raw env pointers.
  unsigned RolloutWorkers = 0;
  /// Probabilistic-testing rounds on the final schedule (§4.1).
  unsigned ProbTestRounds = 3;
  /// Measurement protocol for the autotuner.
  gpusim::MeasureConfig AutotuneMeasure = triton::Autotuner::defaultMeasure();
  /// Worker threads for the autotune sweep (level 1); 1 = serial,
  /// 0 = hardware concurrency. Sweep results are bit-identical for
  /// every value — a wall-clock knob only.
  unsigned AutotuneWorkers = 1;
  /// Base seed of the sweep's per-candidate data/noise streams.
  uint64_t AutotuneSeed = 7;
};

/// Everything one run produces.
struct OptimizeResult {
  /// False when the level-1 sweep produced no valid configuration (no
  /// candidate fits the shape, or every measurement faulted); the run
  /// stops before compilation and every other field is default.
  bool AutotuneValid = true;
  kernels::TileConfig BestConfig; ///< Autotuner winner (§3.1).
  double TritonUs = 0.0;          ///< -O3 schedule at the best config.
  double OptimizedUs = 0.0;       ///< Best schedule the agent found.
  sass::Program OptimizedProg;
  triton::CompiledKernel Kernel;  ///< Binary with the substituted text.
  std::vector<rl::UpdateStats> Training; ///< Figure 8/12 series.
  std::vector<double> EpisodeReturns;
  std::vector<env::AppliedAction> Trace; ///< Greedy replay (§5.7).
  bool Verified = false;                 ///< Probabilistic test passed.
  unsigned KernelExecutions = 0;         ///< Measurement cost (§7).
  /// Rollout-wide counter aggregate: shared measurement-cache
  /// accounting (MeasureCacheHits/Misses) plus the per-stage simulator
  /// counters summed over every game's own measurements (select /
  /// fetch / execute / writeback families, selectHitRate()).
  gpusim::PerfCounters RolloutCounters;

  double speedup() const {
    return OptimizedUs > 0 ? TritonUs / OptimizedUs : 1.0;
  }
};

/// Persistence accounting for a deploy-cache-backed run: how many
/// winners were attempted, stored, and silently-droppable-no-more
/// failed (unwritable directory, I/O errors). Callers that hand a
/// DeployCache to autotuneAll() should surface Failures instead of
/// assuming every winner landed.
struct DeployStats {
  unsigned Attempted = 0;
  unsigned Stored = 0;
  unsigned Failures = 0;
};

/// The optimizer.
///
/// Thread-safety: an Optimizer is immutable after construction — every
/// entry point is const and builds its own transient state — so one
/// instance may be shared by any number of threads as long as each
/// call owns its \p Device and \p DataRng (the optimization service
/// hands every worker a private Gpu copy and a per-job Rng stream).
class Optimizer {
public:
  explicit Optimizer(OptimizeConfig Config = OptimizeConfig());

  /// Runs the full hierarchical optimization for one workload. When
  /// \p Cancel is non-null, the run polls it at cooperative
  /// checkpoints — per autotune candidate, per rollout slot, per PPO
  /// epoch, between stages — and a tripped token unwinds with
  /// support::CancelledError (partial results are discarded; the
  /// autotuner's single-flight keys are reclaimed, never poisoned).
  OptimizeResult optimize(gpusim::Gpu &Device, kernels::WorkloadKind Kind,
                          const kernels::WorkloadShape &Shape,
                          Rng &DataRng,
                          const support::CancelToken *Cancel = nullptr)
      const;

  /// Plays the assembly game on an already-built kernel (the inner
  /// level only; used when the configuration is fixed).
  OptimizeResult optimizeSchedule(gpusim::Gpu &Device,
                                  const kernels::BuiltKernel &Kernel,
                                  Rng &DataRng,
                                  const support::CancelToken *Cancel =
                                      nullptr) const;

  /// Level-1-only batch API: tunes every request in one parallel,
  /// deterministic sweep (Config.AutotuneWorkers / AutotuneSeed) and,
  /// when \p Deploy is non-null, compiles each valid winner and
  /// persists its cubin under
  /// makeKey(GpuType, workloadName, Autotuner::requestKey + config).
  /// Results are returned in request order; invalid sweeps (see
  /// AutotuneResult::Valid) are returned but never persisted. Store
  /// failures are logged, counted in \p Stats (when non-null), and
  /// never abort the remaining requests.
  std::vector<triton::AutotuneResult>
  autotuneAll(const gpusim::Gpu &Device,
              const std::vector<triton::SweepRequest> &Requests,
              triton::DeployCache *Deploy = nullptr,
              const std::string &GpuType = "A100-SIM",
              DeployStats *Stats = nullptr) const;

  const OptimizeConfig &config() const { return Config; }

private:
  triton::AutotuneOptions autotuneOptions() const;

  OptimizeConfig Config;
};

} // namespace core
} // namespace cuasmrl

#endif // CUASMRL_CORE_OPTIMIZER_H

//===- examples/serve_client.cpp - batch RPC client ------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// The client half of examples/serve_daemon: reads a batch of optimize
// requests from a file (or uses a built-in demo batch), pipelines them
// onto one connection, and prints how each resolved plus the round-trip
// timing.
//
//   $ build/examples/serve_client --port 7447 [--host ADDR]
//       [--unix PATH] [--file requests.txt] [--repeat N] [--timeout-ms N]
//
// Request file format — one request per line, '#' starts a comment:
//
//   <workload> [rows=N] [cols=N] [b=N] [m=N] [n=N] [k=N] [nhead=N]
//              [seqlen=N] [dhead=N] [gpu=NAME] [priority=N]
//              [timeout-ms=N] [no-degrade]
//
// where <workload> is one of: fused_ff, mmLeakyReLu, bmm,
// flash-attention, softmax, rmsnorm. Unspecified shape fields keep the
// kind's test-shape defaults.
//
//===----------------------------------------------------------------------===//

#include "net/Client.h"
#include "support/StringUtils.h"
#include "support/Table.h"

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

using namespace cuasmrl;
using namespace cuasmrl::kernels;

namespace {

std::optional<WorkloadKind> kindByName(const std::string &Name) {
  for (WorkloadKind Kind : allWorkloads())
    if (workloadName(Kind) == Name)
      return Kind;
  return std::nullopt;
}

/// Parses one request line; empty optional = parse error (reported).
std::optional<serve::OptimizeRequest> parseLine(const std::string &Line,
                                                unsigned LineNo) {
  std::vector<std::string> Tokens = splitWhitespace(Line);
  if (Tokens.empty())
    return std::nullopt;
  std::optional<WorkloadKind> Kind = kindByName(Tokens[0]);
  if (!Kind) {
    std::cerr << "line " << LineNo << ": unknown workload '" << Tokens[0]
              << "'\n";
    return std::nullopt;
  }
  serve::OptimizeRequest R;
  R.Kind = *Kind;
  R.Shape = testShape(*Kind);
  for (size_t I = 1; I < Tokens.size(); ++I) {
    const std::string &T = Tokens[I];
    if (T == "no-degrade") {
      R.AllowDegraded = false;
      continue;
    }
    size_t Eq = T.find('=');
    if (Eq == std::string::npos) {
      std::cerr << "line " << LineNo << ": bad token '" << T << "'\n";
      return std::nullopt;
    }
    std::string Key = T.substr(0, Eq);
    std::string Val = T.substr(Eq + 1);
    if (Key == "gpu") {
      R.GpuType = Val;
      continue;
    }
    std::optional<int64_t> N = parseInt(Val);
    if (!N) {
      std::cerr << "line " << LineNo << ": bad number in '" << T << "'\n";
      return std::nullopt;
    }
    unsigned U = static_cast<unsigned>(*N);
    if (Key == "rows")
      R.Shape.Rows = U;
    else if (Key == "cols")
      R.Shape.Cols = U;
    else if (Key == "b")
      R.Shape.B = U;
    else if (Key == "m")
      R.Shape.M = U;
    else if (Key == "n")
      R.Shape.N = U;
    else if (Key == "k")
      R.Shape.K = U;
    else if (Key == "nhead")
      R.Shape.NHead = U;
    else if (Key == "seqlen")
      R.Shape.SeqLen = U;
    else if (Key == "dhead")
      R.Shape.DHead = U;
    else if (Key == "priority")
      R.Priority = static_cast<int>(*N);
    else if (Key == "timeout-ms")
      R.Timeout = std::chrono::milliseconds(*N);
    else {
      std::cerr << "line " << LineNo << ": unknown field '" << Key
                << "'\n";
      return std::nullopt;
    }
  }
  return R;
}

/// The built-in demo batch: the two memory-bound kernels at two shapes
/// each, with a duplicate to demonstrate single-flight on the server.
std::vector<serve::OptimizeRequest> demoBatch() {
  std::vector<serve::OptimizeRequest> Batch;
  for (unsigned Rows : {64u, 128u}) {
    serve::OptimizeRequest R;
    R.Kind = WorkloadKind::Softmax;
    R.Shape = testShape(WorkloadKind::Softmax);
    R.Shape.Rows = Rows;
    Batch.push_back(R);
  }
  serve::OptimizeRequest R;
  R.Kind = WorkloadKind::RmsNorm;
  R.Shape = testShape(WorkloadKind::RmsNorm);
  Batch.push_back(R);
  Batch.push_back(Batch.front()); // Dup: attaches server-side.
  return Batch;
}

int usage(const char *Prog) {
  std::cerr << "usage: " << Prog
            << " [--host ADDR] [--port N] [--unix PATH]"
               " [--file requests.txt] [--repeat N] [--timeout-ms N]\n";
  return 2;
}

} // namespace

int main(int argc, char **argv) {
  std::string Host = "127.0.0.1";
  uint16_t Port = 7447;
  std::string UnixPath;
  std::string File;
  unsigned Repeat = 1;
  long TimeoutMs = 120000;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < argc ? argv[++I] : nullptr;
    };
    const char *V = nullptr;
    if (Arg == "--host" && (V = Next()))
      Host = V;
    else if (Arg == "--port" && (V = Next()))
      Port = static_cast<uint16_t>(std::atoi(V));
    else if (Arg == "--unix" && (V = Next()))
      UnixPath = V;
    else if (Arg == "--file" && (V = Next()))
      File = V;
    else if (Arg == "--repeat" && (V = Next()))
      Repeat = static_cast<unsigned>(std::atoi(V));
    else if (Arg == "--timeout-ms" && (V = Next()))
      TimeoutMs = std::atol(V);
    else
      return usage(argv[0]);
  }

  std::vector<serve::OptimizeRequest> Batch;
  if (File.empty()) {
    Batch = demoBatch();
    std::cout << "(no --file: using the built-in demo batch)\n";
  } else {
    std::ifstream In(File);
    if (!In) {
      std::cerr << "serve_client: cannot read '" << File << "'\n";
      return 1;
    }
    std::string Line;
    unsigned LineNo = 0;
    bool Bad = false;
    while (std::getline(In, Line)) {
      ++LineNo;
      std::string_view Stripped = trim(Line);
      if (Stripped.empty() || Stripped[0] == '#')
        continue;
      std::optional<serve::OptimizeRequest> R =
          parseLine(std::string(Stripped), LineNo);
      if (R)
        Batch.push_back(std::move(*R));
      else
        Bad = true;
    }
    if (Bad)
      return 1;
  }
  if (Batch.empty()) {
    std::cerr << "serve_client: no requests to send\n";
    return 1;
  }

  net::ClientConfig CC;
  CC.Host = Host;
  CC.Port = Port;
  CC.UnixPath = UnixPath;
  CC.IoTimeout = std::chrono::milliseconds(TimeoutMs);
  net::Client Client(CC);
  if (Expected<bool> Ok = Client.connect(); !Ok) {
    std::cerr << "serve_client: " << Ok.error().message() << "\n";
    return 1;
  }

  // Pipeline the whole batch, then collect responses as they complete
  // (the wire's request id matches them back to their request).
  const auto Start = std::chrono::steady_clock::now();
  std::map<uint64_t, size_t> IdToIndex;
  for (unsigned Round = 0; Round < Repeat; ++Round)
    for (size_t I = 0; I < Batch.size(); ++I) {
      Expected<uint64_t> Id = Client.send(Batch[I]);
      if (!Id) {
        std::cerr << "serve_client: send: " << Id.error().message()
                  << "\n";
        return 1;
      }
      IdToIndex[*Id] = I;
    }

  std::map<uint64_t, net::WireResponse> Responses;
  while (Responses.size() < IdToIndex.size()) {
    Expected<std::pair<uint64_t, net::WireResponse>> Next =
        Client.receive();
    if (!Next) {
      std::cerr << "serve_client: receive: " << Next.error().message()
                << "\n";
      return 1;
    }
    Responses.emplace(Next->first, std::move(Next->second));
  }
  const double TotalMs = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - Start)
                             .count();

  Table Out({"#", "workload", "key", "status", "persisted", "wall-ms"});
  unsigned Failures = 0;
  for (const auto &[Id, R] : Responses) {
    if (R.St != net::WireStatus::Optimized &&
        R.St != net::WireStatus::LookupHit &&
        R.St != net::WireStatus::Degraded)
      ++Failures;
    Out.addRow({std::to_string(Id),
                workloadName(Batch[IdToIndex.at(Id)].Kind),
                R.Key.empty() ? "-" : R.Key,
                R.Error.empty() ? net::statusName(R.St)
                                : std::string(net::statusName(R.St)) +
                                      ": " + R.Error,
                R.Persisted ? "yes" : "no", formatDouble(R.WallMs, 1)});
  }
  Out.print(std::cout);
  std::cout << Responses.size() << " responses in "
            << formatDouble(TotalMs, 1) << " ms ("
            << formatDouble(TotalMs / Responses.size(), 2)
            << " ms/request pipelined); " << Failures << " failed\n";
  return Failures == 0 ? 0 : 1;
}

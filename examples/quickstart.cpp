//===- examples/quickstart.cpp - five-minute tour of the library -------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Parses a small SASS kernel, runs it on the simulated A100, plays a few
// assembly-game moves by hand and prints the rewards — the paper's
// Figure 3 loop in miniature.
//
//   $ build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "env/AssemblyGame.h"
#include "kernels/Builder.h"
#include "sass/Parser.h"

#include <cstdio>

using namespace cuasmrl;

int main() {
  std::printf("== CuAsmRL quickstart ==\n\n");

  // 1. A hand-written SASS kernel: out[i] = x[i] + y[i].
  const char *VecAdd = R"(
  [B------:R-:W-:-:S01] MOV R2, c[0x0][0x160] ;
  [B------:R-:W-:-:S01] MOV R3, c[0x0][0x164] ;
  [B------:R-:W-:-:S01] MOV R4, c[0x0][0x168] ;
  [B------:R-:W-:-:S01] MOV R5, c[0x0][0x16c] ;
  [B------:R-:W-:-:S01] MOV R6, c[0x0][0x170] ;
  [B------:R-:W-:-:S04] MOV R7, c[0x0][0x174] ;
  [B------:R-:W-:-:S04] MOV R9, 0x0 ;
.L_LOOP:
  [B------:R-:W-:-:S05] ISETP.GE.AND P0, PT, R9, 0x40, PT ;
  [B------:R-:W-:-:S01] @P0 BRA `(.L_EXIT) ;
  [B------:R-:W-:-:S05] IMAD.WIDE R10, R9, 0x4, R2 ;
  [B------:R-:W0:-:S01] LDG.E R12, [R10.64] ;
  [B------:R-:W-:-:S05] IMAD.WIDE R14, R9, 0x4, R4 ;
  [B------:R-:W1:-:S01] LDG.E R13, [R14.64] ;
  [B------:R-:W-:-:S05] IMAD.WIDE R16, R9, 0x4, R6 ;
  [B01----:R-:W-:-:S05] FADD R18, R12, R13 ;
  [B------:R-:W-:-:S01] STG.E [R16.64], R18 ;
  [B------:R-:W-:-:S04] IADD3 R9, R9, 0x1, RZ ;
  [B------:R-:W-:-:S01] BRA `(.L_LOOP) ;
.L_EXIT:
  [B------:R-:W-:-:S01] EXIT ;
)";
  Expected<sass::Program> Parsed = sass::Parser::parseProgram(VecAdd,
                                                              "vecadd");
  if (!Parsed) {
    std::printf("parse error: %s\n", Parsed.error().str().c_str());
    return 1;
  }
  std::printf("parsed %zu instructions\n", Parsed->instrCount());

  // 2. Allocate buffers on the simulated device and launch.
  gpusim::Gpu Device;
  const unsigned N = 64;
  uint64_t X = Device.globalMemory().allocate(4 * N);
  uint64_t Y = Device.globalMemory().allocate(4 * N);
  uint64_t Out = Device.globalMemory().allocate(4 * N);
  for (unsigned I = 0; I < N; ++I) {
    Device.globalMemory().writeValue<float>(X + 4 * I, 1.0f * I);
    Device.globalMemory().writeValue<float>(Y + 4 * I, 2.0f * I);
  }
  gpusim::KernelLaunch Launch;
  Launch.WarpsPerBlock = 1;
  Launch.addParam64(X);
  Launch.addParam64(Y);
  Launch.addParam64(Out);

  gpusim::RunResult R = Device.run(*Parsed, Launch,
                                   gpusim::RunMode::Timed);
  std::printf("timed run: %llu cycles (%.2f us), out[5] = %.1f\n",
              static_cast<unsigned long long>(R.Cycles), R.TimeUs,
              Device.globalMemory().readValue<float>(Out + 20));

  // 3. Wrap it in the assembly game and try a few legal moves.
  kernels::BuiltKernel Kernel;
  Kernel.Name = "vecadd";
  Kernel.Prog = Parsed.takeValue();
  Kernel.Launch = Launch;
  Kernel.OutAddr = Out;
  Kernel.OutBytes = 4 * N;
  Kernel.Inputs = {{X, 4 * N}, {Y, 4 * N}};

  env::GameConfig Config;
  Config.Measure.WarmupIters = 1;
  Config.Measure.RepeatIters = 2;
  env::AssemblyGame Game(Device, Kernel, Config);
  std::printf("\nassembly game: %u actions over %zu x %zu state matrix\n",
              Game.actionCount(), Game.obsRows(), Game.obsFeatures());
  std::printf("initial runtime T0 = %.3f us\n", Game.initialTimeUs());

  Game.reset();
  std::vector<uint8_t> Mask = Game.actionMask();
  unsigned Played = 0;
  for (unsigned A = 0; A < Mask.size() && Played < 4; ++A) {
    if (!Mask[A])
      continue;
    env::AssemblyGame::StepResult S = Game.step(A);
    const env::AppliedAction &Last = Game.trace().back();
    std::printf("  move %s %-46s reward %+0.4f\n",
                Last.Up ? "UP  " : "DOWN", Last.MovedText.substr(0, 44).c_str(),
                S.Reward);
    ++Played;
    Mask = Game.actionMask();
  }

  std::printf("\nbest schedule so far: %.3f us (started at %.3f us)\n",
              Game.bestTimeUs(), Game.initialTimeUs());
  std::printf("run examples/optimize_gemm for the full RL loop.\n");
  return 0;
}

//===- examples/inspect_sass.cpp - static analysis of a generated kernel -----===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Compiles flash-attention through the pipeline, round-trips the cubin,
// and runs the pre-game analysis passes: the stall table, the inference
// pass with its denylist (paper §3.2), and the reorder regions. Prints
// the Figure 7-style resolution breakdown for this kernel.
//
//   $ build/examples/inspect_sass
//
//===----------------------------------------------------------------------===//

#include "analysis/StallAnalysis.h"
#include "triton/Pipeline.h"

#include <cstdio>

using namespace cuasmrl;
using namespace cuasmrl::kernels;

int main() {
  gpusim::Gpu Device;
  Rng DataRng(11);
  WorkloadShape Shape = testShape(WorkloadKind::FlashAttention);
  triton::CompiledKernel Compiled = triton::compileKernel(
      Device, WorkloadKind::FlashAttention, Shape,
      candidateConfigs(WorkloadKind::FlashAttention).front(), DataRng);

  std::printf("== intercepted cubin for %s ==\n",
              Compiled.Binary.info().Name.c_str());
  std::printf("sections:");
  for (const cubin::Section &S : Compiled.Binary.sections())
    std::printf(" %s(%zu B)", S.Name.c_str(), S.Data.size());
  std::printf("\n");

  Expected<sass::Program> Prog = triton::interceptCubin(Compiled);
  if (!Prog) {
    std::printf("disassembly failed: %s\n", Prog.error().str().c_str());
    return 1;
  }
  std::printf("disassembled %zu instructions\n\n", Prog->instrCount());

  // The built-in stall table (paper Table 1).
  analysis::StallTable Table = analysis::StallTable::builtin();
  std::printf("built-in stall table (%zu entries):\n", Table.size());
  for (const auto &[Key, Cycles] : Table.entries())
    std::printf("  %-16s %u cycles\n", Key.c_str(), Cycles);

  // Pre-game inference pass (§3.2).
  analysis::StallAnalysis A = analysis::analyzeStallCounts(*Prog, Table);
  std::printf("\nstall-count dependency resolution (Figure 7 for this "
              "kernel):\n");
  std::printf("  resolved by table (db):   %5.1f%%  (%u deps)\n",
              A.pctTable(), A.ResolvedByTable);
  std::printf("  inferred from schedule:   %5.1f%%  (%u deps)\n",
              A.pctInferred(), A.ResolvedByInference);
  std::printf("  denylisted (label cross): %5.1f%%  (%u deps)\n",
              A.pctDenylisted(), A.DenylistedDeps);
  std::printf("\ninferred latencies:\n");
  for (const auto &[Key, Cycles] : A.Inferred.entries())
    std::printf("  %-16s >= %u cycles (overestimate is safe)\n",
                Key.c_str(), Cycles);
  std::printf("\ndenylisted memory instructions: %zu\n", A.Denylist.size());
  for (size_t Idx : A.Denylist)
    std::printf("  [%3zu] %s\n", Idx,
                Prog->stmt(Idx).instr().str().substr(0, 60).c_str());

  // Reorder regions (§3.5 boundaries).
  analysis::RegionInfo Regions = analysis::computeRegions(
      *Prog, analysis::BoundaryKind::LabelsAndSync);
  std::printf("\nreorder regions: %d (bounded by labels, control flow and "
              "sync)\n",
              Regions.NumRegions);

  // First lines of the schedule, annotated.
  std::printf("\nschedule head:\n");
  for (size_t I = 0; I < Prog->size() && I < 12; ++I) {
    if (Prog->stmt(I).isLabel()) {
      std::printf("      %s:\n", Prog->stmt(I).label().c_str());
      continue;
    }
    const sass::Instruction &Instr = Prog->stmt(I).instr();
    std::printf("  %s %s\n", Instr.ctrl().str().c_str(),
                Instr.str().substr(0, 58).c_str());
  }
  return 0;
}

//===- examples/autotune_sweep.cpp - batched parallel autotuning -------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Tunes every evaluated workload (Table 2) in one deterministic
// parallel sweep and persists each winner's cubin through the deploy
// cache (§4.2): the batch equivalent of running the §3.1 level-1
// search kernel by kernel. The sweep result is bit-identical for any
// worker count, so --workers only changes wall-clock.
//
//   $ build/examples/autotune_sweep [--workers N] [--paper]
//
//===----------------------------------------------------------------------===//

#include "core/Optimizer.h"
#include "support/StringUtils.h"
#include "support/Table.h"
#include "triton/DeployCache.h"

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>

using namespace cuasmrl;
using namespace cuasmrl::kernels;

int main(int argc, char **argv) {
  unsigned Workers = 0; // 0 = hardware concurrency.
  bool Paper = false;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--workers" && I + 1 < argc)
      Workers = static_cast<unsigned>(std::atoi(argv[++I]));
    else if (Arg == "--paper")
      Paper = true;
    else {
      std::cerr << "usage: " << argv[0] << " [--workers N] [--paper]\n";
      return 2;
    }
  }

  gpusim::Gpu Device;
  std::vector<triton::SweepRequest> Requests;
  for (WorkloadKind Kind : allWorkloads())
    Requests.push_back(
        {Kind, Paper ? paperShape(Kind) : testShape(Kind)});

  std::cout << "== batched autotune sweep: " << Requests.size()
            << " workloads, "
            << (Workers ? std::to_string(Workers) : std::string("auto"))
            << " workers ==\n\n";

  std::string CacheDir =
      (std::filesystem::temp_directory_path() / "cuasmrl_sweep_cache")
          .string();
  triton::DeployCache Deploy(CacheDir);

  core::OptimizeConfig Config;
  Config.AutotuneWorkers = Workers;
  core::Optimizer Optimizer(Config);

  auto Start = std::chrono::steady_clock::now();
  std::vector<triton::AutotuneResult> Results =
      Optimizer.autotuneAll(Device, Requests, &Deploy);
  auto End = std::chrono::steady_clock::now();
  double Millis =
      std::chrono::duration<double, std::milli>(End - Start).count();

  Table Out({"workload", "candidates", "winner", "best us"});
  for (size_t I = 0; I < Requests.size(); ++I) {
    const triton::AutotuneResult &R = Results[I];
    Out.addRow({workloadName(Requests[I].Kind),
                std::to_string(R.Sweep.size()),
                R.Valid ? R.Best.str() : "(no valid config)",
                R.Valid ? formatDouble(R.BestUs, 2) : "-"});
  }
  Out.print(std::cout);

  std::cout << "\nswept " << Requests.size() << " workloads in "
            << formatDouble(Millis, 1) << " ms\n";
  std::cout << "winner cubins persisted under " << CacheDir << ":\n";
  for (size_t I = 0; I < Requests.size(); ++I) {
    if (!Results[I].Valid)
      continue;
    std::string Key = triton::DeployCache::makeKey(
        "A100-SIM",
        triton::Autotuner::requestKey(Requests[I].Kind, Requests[I].Shape),
        Results[I].Best.str());
    std::cout << "  " << Key << ".cubin"
              << (Deploy.contains(Key) ? "" : "  (MISSING!)") << "\n";
  }
  std::cout << "\n(deterministic: rerunning with any --workers value "
               "reproduces these numbers bit-exactly)\n";
  std::cout << "(demo cache directory removed on exit)\n";
  std::filesystem::remove_all(CacheDir);
  return 0;
}

//===- examples/serve_many.cpp - flooding the optimization service -----------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// The §4.2 deployment workflow as a server under load: floods an
// OptimizationService with every evaluated workload (Table 2) across a
// shape grid — plus deliberate duplicates and a second wave of
// identical requests — and prints how each admission resolved
// (enqueue / single-flight attach / deploy-cache lookup hit) together
// with the service counters.
//
// Responses are bit-identical for any --workers value: the worker
// count changes wall-clock only (see the determinism contract in
// serve/OptimizationService.h).
//
//   $ build/examples/serve_many [--workers N] [--paper]
//
//===----------------------------------------------------------------------===//

#include "serve/OptimizationService.h"
#include "support/StringUtils.h"
#include "support/Table.h"

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

using namespace cuasmrl;
using namespace cuasmrl::kernels;
using namespace cuasmrl::serve;

namespace {

/// A light optimize configuration so the demo finishes in seconds;
/// --paper restores the full defaults.
core::OptimizeConfig demoConfig(bool Paper) {
  core::OptimizeConfig C;
  if (Paper)
    return C;
  C.Ppo.TotalSteps = 64;
  C.Ppo.RolloutLen = 16;
  C.Ppo.MiniBatches = 2;
  C.Ppo.Epochs = 2;
  C.Ppo.Channels = 4;
  C.Ppo.Hidden = 16;
  C.Game.EpisodeLength = 8;
  C.Game.Measure.WarmupIters = 1;
  C.Game.Measure.RepeatIters = 1;
  C.AutotuneMeasure.WarmupIters = 1;
  C.AutotuneMeasure.RepeatIters = 2;
  C.ProbTestRounds = 1;
  return C;
}

/// Two shapes per kind: the test shape and a grown variant along the
/// kind's leading dimension.
std::vector<WorkloadShape> shapeGrid(WorkloadKind Kind, bool Paper) {
  WorkloadShape Base = Paper ? paperShape(Kind) : testShape(Kind);
  WorkloadShape Grown = Base;
  switch (Kind) {
  case WorkloadKind::FusedFF:
  case WorkloadKind::MmLeakyRelu:
  case WorkloadKind::Bmm:
    Grown.M *= 2;
    break;
  case WorkloadKind::FlashAttention:
    Grown.SeqLen *= 2;
    break;
  case WorkloadKind::Softmax:
  case WorkloadKind::RmsNorm:
    Grown.Rows *= 2;
    break;
  }
  return {Base, Grown};
}

const char *admissionName(Admission How) {
  switch (How) {
  case Admission::LookupHit:
    return "lookup-hit";
  case Admission::Attached:
    return "attached";
  case Admission::Enqueued:
    return "enqueued";
  case Admission::NearMiss:
    return "near-miss";
  case Admission::Rejected:
    return "rejected";
  }
  return "?";
}

void printStats(const ServiceStats &S) {
  std::cout << "  submitted=" << S.Submitted << " lookup-hits="
            << S.LookupHits << " merged=" << S.Merged
            << " optimize-runs=" << S.OptimizeRuns
            << " training-updates=" << S.TrainingUpdates
            << "\n  persisted=" << S.PersistStores
            << " persist-failures=" << S.PersistFailures
            << " deployed-keys=" << S.DeployedKeys << " job-wall-ms="
            << formatDouble(S.TotalJobWallMs, 1) << "\n";
}

} // namespace

int main(int argc, char **argv) {
  unsigned Workers = 0; // 0 = hardware concurrency.
  bool Paper = false;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--workers" && I + 1 < argc)
      Workers = static_cast<unsigned>(std::atoi(argv[++I]));
    else if (Arg == "--paper")
      Paper = true;
    else {
      std::cerr << "usage: " << argv[0] << " [--workers N] [--paper]\n";
      return 2;
    }
  }

  std::string CacheDir =
      (std::filesystem::temp_directory_path() / "cuasmrl_serve_many")
          .string();
  std::filesystem::remove_all(CacheDir);

  gpusim::Gpu Device;
  ServiceConfig SC;
  SC.Workers = Workers;
  SC.DeployDir = CacheDir;
  SC.Defaults = demoConfig(Paper);
  OptimizationService Service(Device, SC);

  // The request flood: every workload at two shapes, and every fourth
  // request repeated at a higher priority to exercise single-flight.
  std::vector<OptimizeRequest> Stream;
  for (WorkloadKind Kind : allWorkloads())
    for (const WorkloadShape &Shape : shapeGrid(Kind, Paper)) {
      OptimizeRequest R;
      R.Kind = Kind;
      R.Shape = Shape;
      Stream.push_back(R);
      if (Stream.size() % 4 == 0) {
        OptimizeRequest Dup = R;
        Dup.Priority = 5;
        Stream.push_back(Dup);
      }
    }

  std::cout << "== wave 1: " << Stream.size() << " requests, "
            << Service.workerCount() << " workers ==\n";
  auto RunWave = [&](const char *Name) {
    auto Start = std::chrono::steady_clock::now();
    std::vector<Ticket> Tickets;
    for (const OptimizeRequest &R : Stream)
      Tickets.push_back(Service.submit(R));
    Service.drain();
    double Millis = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - Start)
                        .count();

    Table Out({"workload", "shape", "admission", "status", "speedup"});
    for (size_t I = 0; I < Stream.size(); ++I) {
      const Ticket &T = Tickets[I];
      ResponsePtr R = T.Response.get();
      std::string Status;
      switch (R->St) {
      case OptimizeResponse::Status::Optimized:
        Status = R->Result.Verified ? "optimized+verified" : "optimized";
        break;
      case OptimizeResponse::Status::LookupHit:
        Status = "deployed cubin";
        break;
      case OptimizeResponse::Status::Degraded:
        Status = "degraded (served " + R->DegradedFrom + ")";
        break;
      case OptimizeResponse::Status::Cancelled:
        Status = "cancelled";
        break;
      case OptimizeResponse::Status::DeadlineExceeded:
        Status = "deadline-exceeded";
        break;
      case OptimizeResponse::Status::Failed:
        Status = "FAILED: " + R->Error;
        break;
      case OptimizeResponse::Status::Rejected:
        Status = "rejected: " + R->Error;
        break;
      }
      Out.addRow({workloadName(Stream[I].Kind),
                  triton::Autotuner::requestKey(Stream[I].Kind,
                                                Stream[I].Shape),
                  admissionName(T.How), Status,
                  R->St == OptimizeResponse::Status::Optimized
                      ? formatDouble(R->Result.speedup(), 3) + "x"
                      : "-"});
    }
    Out.print(std::cout);
    std::cout << Name << " finished in " << formatDouble(Millis, 1)
              << " ms\n";
    printStats(Service.stats());
  };

  RunWave("wave 1 (cold: every unique key trains)");

  // Wave 2: the §4.2 payoff — the same stream resolves entirely from
  // the deploy cache, zero training.
  std::cout << "\n== wave 2: same stream, served from the deploy cache ==\n";
  RunWave("wave 2 (warm: lookups only)");

  Service.shutdown();
  std::cout << "\n(deterministic: any --workers value reproduces the "
               "same responses bit-exactly)\n";
  std::cout << "(demo cache directory removed on exit)\n";
  std::filesystem::remove_all(CacheDir);
  return 0;
}

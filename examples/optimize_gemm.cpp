//===- examples/optimize_gemm.cpp - full Figure 2 pipeline on a GEMM ---------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Runs the complete hierarchical optimization (autotune -> compile ->
// intercept -> assembly game with PPO -> probabilistic test ->
// substitute) on the fused GEMM+LeakyReLU workload and prints the move
// trace the agent discovered (paper §5.7).
//
//   $ build/examples/optimize_gemm [total_rl_steps]
//
//===----------------------------------------------------------------------===//

#include "core/Optimizer.h"

#include <cstdio>
#include <cstdlib>

using namespace cuasmrl;
using namespace cuasmrl::kernels;

int main(int argc, char **argv) {
  unsigned Steps = argc > 1 ? std::atoi(argv[1]) : 2048;

  gpusim::Gpu Device;
  Rng DataRng(7);
  WorkloadShape Shape = paperShape(WorkloadKind::MmLeakyRelu);
  std::printf("== optimizing %s (M=%u N=%u K=%u) with %u RL steps ==\n\n",
              workloadName(WorkloadKind::MmLeakyRelu).c_str(), Shape.M,
              Shape.N, Shape.K, Steps);

  core::OptimizeConfig Config;
  Config.Ppo.TotalSteps = Steps;
  Config.Ppo.RolloutLen = 64;
  Config.Ppo.Lr = 1e-3; // Scaled to the reduced step budget.
  Config.Game.Measure.WarmupIters = 1;
  Config.Game.Measure.RepeatIters = 1;
  Config.Game.Measure.NoiseStddev = 0.001;

  core::Optimizer Optimizer(Config);
  core::OptimizeResult R =
      Optimizer.optimize(Device, WorkloadKind::MmLeakyRelu, Shape, DataRng);

  std::printf("autotuner winner: %s\n", R.BestConfig.str().c_str());
  std::printf("Triton -O3 runtime: %8.2f us\n", R.TritonUs);
  std::printf("CuAsmRL runtime:    %8.2f us  (speedup %.3fx)\n",
              R.OptimizedUs, R.speedup());
  std::printf("probabilistic test: %s\n",
              R.Verified ? "PASSED" : "FAILED");
  std::printf("kernel executions spent: %u\n\n", R.KernelExecutions);

  std::printf("training curve (episodic return = cumulative %% gained):\n");
  for (size_t I = 0; I < R.Training.size();
       I += std::max<size_t>(1, R.Training.size() / 8))
    std::printf("  step %5u  return %+7.3f  entropy %.3f  kl %.5f\n",
                R.Training[I].StepsDone, R.Training[I].MeanEpisodicReturn,
                R.Training[I].Entropy, R.Training[I].ApproxKl);

  std::printf("\ninference-mode move trace (greedy replay, §5.7):\n");
  size_t Shown = 0;
  for (const env::AppliedAction &A : R.Trace) {
    if (Shown++ >= 12)
      break;
    std::printf("  %s %-52s past %-40s %+0.4f\n", A.Up ? "UP  " : "DOWN",
                A.MovedText.substr(0, 50).c_str(),
                A.OtherText.substr(0, 38).c_str(), A.Reward);
  }
  if (R.Trace.size() > Shown)
    std::printf("  ... %zu further moves\n", R.Trace.size() - Shown);
  return 0;
}

//===- examples/deploy_cache.cpp - offline search, deploy-time lookup --------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// The paper's §4.2 workflow (Listing 5): invoke the optimization once
// offline, write the best cubin to the filesystem keyed by GPU and
// workload, then at deployment load it back with zero search cost and
// verify it still beats the -O3 schedule.
//
//   $ build/examples/deploy_cache [total_rl_steps]
//
//===----------------------------------------------------------------------===//

#include "core/Optimizer.h"
#include "gpusim/Measurement.h"
#include "triton/DeployCache.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>

using namespace cuasmrl;
using namespace cuasmrl::kernels;

int main(int argc, char **argv) {
  unsigned Steps = argc > 1 ? std::atoi(argv[1]) : 1024;
  std::string CacheDir =
      (std::filesystem::temp_directory_path() / "cuasmrl_deploy_cache")
          .string();

  gpusim::Gpu Device;
  Rng DataRng(17);
  WorkloadShape Shape = testShape(WorkloadKind::Softmax);

  // ---- offline: search and store -----------------------------------------
  std::printf("== offline search (%u RL steps) ==\n", Steps);
  core::OptimizeConfig Config;
  Config.Ppo.TotalSteps = Steps;
  Config.Ppo.RolloutLen = 32;
  Config.Ppo.Lr = 1e-3;
  Config.Game.Measure.WarmupIters = 1;
  Config.Game.Measure.RepeatIters = 1;
  core::Optimizer Optimizer(Config);
  core::OptimizeResult R =
      Optimizer.optimize(Device, WorkloadKind::Softmax, Shape, DataRng);
  std::printf("triton %.3f us -> cuasmrl %.3f us (%.3fx), verified=%d\n",
              R.TritonUs, R.OptimizedUs, R.speedup(), R.Verified);

  triton::DeployCache Cache(CacheDir);
  std::string Key = triton::DeployCache::makeKey(
      "A100-SIM", workloadName(WorkloadKind::Softmax),
      R.BestConfig.str());
  if (!Cache.store(Key, R.Kernel.Binary)) {
    std::printf("failed to store cubin\n");
    return 1;
  }
  std::printf("stored optimized cubin under key '%s'\n\n", Key.c_str());

  // ---- deployment: lookup instead of training ----------------------------
  std::printf("== deployment (lookup, no training) ==\n");
  std::optional<cubin::CubinFile> Loaded = Cache.load(Key);
  if (!Loaded) {
    std::printf("cache miss!\n");
    return 1;
  }
  Expected<sass::Program> Prog = cubin::disassemble(*Loaded);
  if (!Prog) {
    std::printf("disassembly failed: %s\n", Prog.error().str().c_str());
    return 1;
  }
  gpusim::Measurement M =
      measureKernel(Device, *Prog, R.Kernel.Runtime.Launch);
  std::printf("loaded schedule runs at %.3f us (offline search found "
              "%.3f us)\n",
              M.MeanUs, R.OptimizedUs);
  std::printf("no runtime overhead: deployment skipped %u kernel "
              "executions of search.\n",
              R.KernelExecutions);
  std::filesystem::remove_all(CacheDir);
  return 0;
}

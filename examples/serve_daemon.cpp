//===- examples/serve_daemon.cpp - the network front door as a daemon -----===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Runs an OptimizationService behind a net::Server: the §4.2 "offline
// search, online lookup" workflow as a standalone process that other
// processes talk to over TCP or a unix-domain socket (wire format in
// docs/SERVING.md). Pair it with examples/serve_client.
//
// Cross-process cache sharing is on by default: two daemons pointed at
// the same --deploy-dir claim each key before optimizing, so
// concurrent identical requests across processes run exactly one job.
// Queue-priority aging is on by default too (--aging-ms 0 disables) so
// a flood of high-priority traffic cannot starve old low-priority
// requests.
//
//   $ build/examples/serve_daemon --port 7447 --deploy-dir /tmp/cache
//       [--unix /tmp/cuasmrl.sock] [--workers N] [--duration-ms N]
//       [--max-in-flight N] [--rate R --burst B] [--aging-ms N]
//       [--stats-log stats.jsonl] [--no-claims] [--paper]
//
// With --duration-ms 0 (the default) the daemon serves until SIGINT /
// SIGTERM, then drains and prints final service + network counters.
//
//===----------------------------------------------------------------------===//

#include "net/Server.h"
#include "serve/OptimizationService.h"
#include "stats/BenchReport.h"
#include "stats/SnapshotLogger.h"
#include "support/StringUtils.h"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>

using namespace cuasmrl;
using namespace cuasmrl::serve;

namespace {

std::atomic<bool> StopRequested{false};

void onSignal(int) { StopRequested.store(true); }

/// A light optimize configuration so demo requests finish in seconds;
/// --paper restores the full defaults.
core::OptimizeConfig demoConfig(bool Paper) {
  core::OptimizeConfig C;
  if (Paper)
    return C;
  C.Ppo.TotalSteps = 64;
  C.Ppo.RolloutLen = 16;
  C.Ppo.MiniBatches = 2;
  C.Ppo.Epochs = 2;
  C.Ppo.Channels = 4;
  C.Ppo.Hidden = 16;
  C.Game.EpisodeLength = 8;
  C.Game.Measure.WarmupIters = 1;
  C.Game.Measure.RepeatIters = 1;
  C.AutotuneMeasure.WarmupIters = 1;
  C.AutotuneMeasure.RepeatIters = 2;
  C.ProbTestRounds = 1;
  return C;
}

void printCounters(const ServiceStats &S, const net::NetStats &N) {
  std::cout << "service: submitted=" << S.Submitted
            << " lookup-hits=" << S.LookupHits << " merged=" << S.Merged
            << " optimize-runs=" << S.OptimizeRuns
            << " rejected=" << S.Rejected
            << " claim-waits=" << S.ClaimWaits
            << " claim-hits=" << S.ClaimHits
            << " claim-breaks=" << S.ClaimBreaks << "\n"
            << "network: conns=" << N.ConnectionsAccepted << "/"
            << N.ConnectionsClosed << " frames=" << N.FramesReceived << "/"
            << N.FramesSent << " bytes=" << N.BytesReceived << "/"
            << N.BytesSent << " decode-errors=" << N.DecodeErrors
            << " quota-rejections=" << N.QuotaRejections
            << " rate-limited=" << N.RateLimited << "\n";
}

int usage(const char *Prog) {
  std::cerr
      << "usage: " << Prog
      << " [--port N] [--host ADDR] [--unix PATH] [--deploy-dir DIR]\n"
         "       [--workers N] [--duration-ms N] [--max-in-flight N]\n"
         "       [--rate R] [--burst B] [--aging-ms N] [--no-claims]\n"
         "       [--stats-log PATH] [--stats-interval-ms N] [--paper]\n";
  return 2;
}

} // namespace

int main(int argc, char **argv) {
  uint16_t Port = 7447;
  std::string Host = "127.0.0.1";
  std::string UnixPath;
  std::string DeployDir = "cuasmrl-deploy";
  unsigned Workers = 0; // 0 = hardware concurrency.
  long DurationMs = 0;  // 0 = until SIGINT.
  unsigned MaxInFlight = 64;
  double Rate = 0.0, Burst = 16.0;
  long AgingMs = 250; // Priority aging default-on (0 disables).
  bool Claims = true;
  bool Paper = false;
  std::string StatsLog;
  long StatsIntervalMs = 1000;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < argc ? argv[++I] : nullptr;
    };
    const char *V = nullptr;
    if (Arg == "--port" && (V = Next()))
      Port = static_cast<uint16_t>(std::atoi(V));
    else if (Arg == "--host" && (V = Next()))
      Host = V;
    else if (Arg == "--unix" && (V = Next()))
      UnixPath = V;
    else if (Arg == "--deploy-dir" && (V = Next()))
      DeployDir = V;
    else if (Arg == "--workers" && (V = Next()))
      Workers = static_cast<unsigned>(std::atoi(V));
    else if (Arg == "--duration-ms" && (V = Next()))
      DurationMs = std::atol(V);
    else if (Arg == "--max-in-flight" && (V = Next()))
      MaxInFlight = static_cast<unsigned>(std::atoi(V));
    else if (Arg == "--rate" && (V = Next()))
      Rate = std::atof(V);
    else if (Arg == "--burst" && (V = Next()))
      Burst = std::atof(V);
    else if (Arg == "--aging-ms" && (V = Next()))
      AgingMs = std::atol(V);
    else if (Arg == "--no-claims")
      Claims = false;
    else if (Arg == "--stats-log" && (V = Next()))
      StatsLog = V;
    else if (Arg == "--stats-interval-ms" && (V = Next()))
      StatsIntervalMs = std::atol(V);
    else if (Arg == "--paper")
      Paper = true;
    else
      return usage(argv[0]);
  }

  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);

  gpusim::Gpu Device;
  ServiceConfig SC;
  SC.Workers = Workers;
  SC.DeployDir = DeployDir;
  SC.Defaults = demoConfig(Paper);
  SC.CrossProcessClaims = Claims;
  SC.AgingInterval = std::chrono::milliseconds(AgingMs);
  SC.AgingStep = 1;
  OptimizationService Service(Device, SC);

  net::ServerConfig NC;
  NC.Host = Host;
  NC.Port = Port;
  NC.UnixPath = UnixPath;
  NC.MaxInFlightPerConn = MaxInFlight;
  NC.RatePerSec = Rate;
  NC.RateBurst = Burst;
  net::Server Server(Service, NC);
  Expected<uint16_t> Bound = Server.start();
  if (!Bound) {
    std::cerr << "serve_daemon: " << Bound.error().message() << "\n";
    return 1;
  }

  // One JSONL trajectory line per interval: service and network
  // counters side by side (see docs/OBSERVABILITY.md).
  stats::StatsSnapshotLogger Logger(
      [&] {
        stats::JsonValue Obj = stats::JsonValue::object();
        Obj.set("service", stats::serviceStatsToJson(Service.stats()));
        Obj.set("net", stats::netStatsToJson(Server.stats()));
        return Obj;
      },
      {std::chrono::milliseconds(StatsIntervalMs), StatsLog});
  if (!StatsLog.empty() && !Logger.start()) {
    std::cerr << "serve_daemon: cannot open stats log '" << StatsLog
              << "'\n";
    return 1;
  }

  std::cout << "serve_daemon: listening on " << Host << ":" << *Bound;
  if (!UnixPath.empty())
    std::cout << " and " << UnixPath;
  std::cout << " (deploy-dir " << DeployDir << ", workers "
            << Service.workerCount() << ", claims "
            << (Claims ? "on" : "off") << ", aging "
            << (AgingMs > 0 ? std::to_string(AgingMs) + "ms" : "off")
            << ")\n";
  if (DurationMs > 0)
    std::cout << "serving for " << DurationMs << " ms...\n";
  else
    std::cout << "serving until SIGINT...\n";

  const auto Deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(DurationMs);
  while (!StopRequested.load()) {
    if (DurationMs > 0 && std::chrono::steady_clock::now() >= Deadline)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  std::cout << "serve_daemon: draining...\n";
  Server.stop(); // No new frames; in-flight jobs finish below.
  Service.drain();
  Logger.stop();
  printCounters(Service.stats(), Server.stats());
  Service.shutdown();
  return 0;
}

//===- examples/autotune_attention.cpp - hierarchical search level 1 ---------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// The first level of the paper's hierarchical search (§3.1): enumerate
// kernel configurations for flash-attention, measure each on the
// simulated device and pick the best. Configurations are worth up to
// ~2x — which is why the RL level only starts after this one.
//
//   $ build/examples/autotune_attention
//
//===----------------------------------------------------------------------===//

#include "support/StringUtils.h"
#include "support/Table.h"
#include "triton/Autotuner.h"

#include <iostream>

using namespace cuasmrl;
using namespace cuasmrl::kernels;

int main() {
  gpusim::Gpu Device;
  WorkloadShape Shape = paperShape(WorkloadKind::FlashAttention);
  std::cout << "== autotuning flash-attention (B=" << Shape.B
            << " heads=" << Shape.NHead << " seq=" << Shape.SeqLen
            << " d=" << Shape.DHead << ") ==\n\n";

  // Two sweep workers: candidates build/measure concurrently on
  // private device copies; the result is bit-identical to Workers = 1.
  triton::AutotuneOptions Options;
  Options.Workers = 2;
  triton::Autotuner Tuner(Options);
  triton::AutotuneResult R =
      Tuner.tune(Device, WorkloadKind::FlashAttention, Shape);

  Table Out({"config", "mean us", "vs best"});
  for (const triton::TunedConfig &T : R.Sweep) {
    if (!T.Valid) {
      Out.addRow({T.Config.str(), "invalid", "-"});
      continue;
    }
    Out.addRow({T.Config.str(), formatDouble(T.MeanUs, 2),
                formatDouble(T.MeanUs / R.BestUs, 3) + "x"});
  }
  Out.print(std::cout);
  std::cout << "\nwinner: " << R.Best.str() << " at "
            << formatDouble(R.BestUs, 2) << " us\n";
  std::cout << "(cached: second tune() call reuses this result)\n";

  // Demonstrate the cache.
  triton::AutotuneResult Again =
      Tuner.tune(Device, WorkloadKind::FlashAttention, Shape);
  std::cout << "cache check: " << Again.Best.str() << "\n";
  return 0;
}

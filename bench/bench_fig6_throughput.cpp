//===- bench/bench_fig6_throughput.cpp - reproduces paper Figure 6 -----------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Regenerates Figure 6: normalized kernel throughput of Torch-eager
// compositions, Triton (-O3 schedule at the autotuned configuration),
// CuAsmRL (RL-optimized schedule) and the hand-optimized reference
// implementations (cuBLAS / FlashAttention-2 class), with the Cutlass
// default-configuration observation for fused GEMM+LeakyReLU (§5.3).
// Throughput is normalized to Triton = 1.0; higher is better.
//
// Budget: ~3000 RL steps per kernel (override with CUASMRL_STEPS;
// CUASMRL_FAST=1 shrinks everything 8x).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "support/StringUtils.h"
#include "support/Table.h"
#include "triton/Autotuner.h"

#include <iostream>

using namespace cuasmrl;
using namespace cuasmrl::bench;
using namespace cuasmrl::kernels;

namespace {

/// Measures one kernel (timed mode, one resident group, extrapolated).
double measureUs(gpusim::Gpu &Device, const BuiltKernel &K) {
  gpusim::MeasureConfig M;
  M.WarmupIters = 1;
  M.RepeatIters = 2;
  M.MaxBlocks = Device.residentBlocks(K.Launch);
  gpusim::Measurement R = measureKernel(Device, K.Prog, K.Launch, M);
  return R.Valid ? R.MeanUs : -1.0;
}

/// Torch-eager composition time: sum of kernels + launch overheads.
double torchUs(gpusim::Gpu &Device, WorkloadKind Kind,
               const WorkloadShape &Shape, Rng &DataRng) {
  double Total = 0.0;
  std::vector<BuiltKernel> Seq =
      buildTorchComposition(Device, Kind, Shape, DataRng);
  for (const BuiltKernel &K : Seq) {
    double Us = measureUs(Device, K);
    if (Us < 0)
      return -1.0;
    Total += Us + LaunchOverheadUs;
  }
  return Total;
}

} // namespace

/// Per-kernel RL budgets: memory-bound kernels converge quickly; the
/// compute-bound pipelines get the larger share.
static unsigned kernelBudget(WorkloadKind Kind) {
  switch (Kind) {
  case WorkloadKind::Softmax:
    return stepsBudget(1024);
  case WorkloadKind::RmsNorm:
    return stepsBudget(1536);
  case WorkloadKind::Bmm:
  case WorkloadKind::FlashAttention:
    return stepsBudget(2560);
  default:
    return stepsBudget(3072);
  }
}

int main() {
  std::cout << "== Figure 6: kernel throughput normalized to Triton "
               "(RL budget up to " << stepsBudget(3072)
            << " steps/kernel) ==\n\n";

  Table Out({"kernel", "Torch", "Triton", "CuAsmRL", "Reference",
             "CuAsmRL speedup"});
  std::vector<double> Speedups;

  for (WorkloadKind Kind : allWorkloads()) {
    WorkloadShape Shape = paperShape(Kind);
    gpusim::Gpu Device;
    Rng DataRng(3);

    // Level 1: autotune (the Triton baseline uses the best config).
    triton::Autotuner Tuner;
    triton::AutotuneResult Tuned = Tuner.tune(Device, Kind, Shape, DataRng);
    BuiltKernel Triton = buildKernel(Device, Kind, Shape, Tuned.Best,
                                     ScheduleStyle::TritonO3, DataRng);
    double TritonTime = measureUs(Device, Triton);

    // Torch-eager composition.
    double TorchTime = torchUs(Device, Kind, Shape, DataRng);

    // Reference: expertly scheduled implementation at the same config
    // (cuBLAS / FlashAttention-2 class hand scheduling).
    BuiltKernel Ref = buildKernel(Device, Kind, Shape, Tuned.Best,
                                  ScheduleStyle::Expert, DataRng);
    double RefTime = measureUs(Device, Ref);

    // Level 2: the assembly game with PPO.
    TrainOutcome RL = trainOnKernel(Device, Triton, kernelBudget(Kind),
                                    /*Seed=*/1);

    // Re-measure the winning schedule under the same protocol as the
    // baselines (training uses a reduced block group for speed).
    BuiltKernel Best = Triton;
    Best.Prog = RL.BestProg;
    double BestTime = measureUs(Device, Best);
    double Speedup = TritonTime / BestTime;
    Speedups.push_back(Speedup);
    Out.addRow({workloadName(Kind),
                TorchTime > 0 ? formatDouble(TritonTime / TorchTime, 3)
                              : "-",
                "1.000", formatDouble(Speedup, 3),
                RefTime > 0 ? formatDouble(TritonTime / RefTime, 3) : "-",
                formatDouble(Speedup, 3) + "x"});
    std::cout << "  [" << workloadName(Kind) << "] triton " << TritonTime
              << "us -> cuasmrl " << BestTime << "us\n";
  }

  std::cout << "\n";
  Out.print(std::cout);
  std::cout << "\ngeomean CuAsmRL speedup over Triton: "
            << formatDouble(geomean(Speedups), 3)
            << "x   (paper: 1.09x; up to 26% on individual kernels)\n";

  // §5.3 Cutlass observation on fused GEMM with LeakyReLU.
  {
    gpusim::Gpu Device;
    Rng DataRng(3);
    WorkloadShape Shape = paperShape(WorkloadKind::MmLeakyRelu);
    triton::Autotuner Tuner;
    triton::AutotuneResult Tuned =
        Tuner.tune(Device, WorkloadKind::MmLeakyRelu, Shape, DataRng);
    BuiltKernel Triton =
        buildKernel(Device, WorkloadKind::MmLeakyRelu, Shape, Tuned.Best,
                    ScheduleStyle::TritonO3, DataRng);
    BuiltKernel Cutlass =
        buildCutlassDefault(Device, WorkloadKind::MmLeakyRelu, Shape,
                            DataRng);
    double T = measureUs(Device, Triton);
    double C = measureUs(Device, Cutlass);
    std::cout << "\nCutlass default configuration on mmLeakyReLu: "
              << formatDouble(C / T, 2)
              << "x slower than Triton (paper: ~10x on hardware; the "
                 "simulator's latency\nmodel compresses the gap — see "
                 "EXPERIMENTS.md)\n";
  }
  return 0;
}

//===- bench/bench_simulator_perf.cpp - substrate microbenchmarks ------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// google-benchmark timings of the substrate hot paths: the reward loop's
// cost is dominated by timed simulation (one measurement per RL step,
// §3.6/§7), so these numbers bound achievable training throughput.
//
//===----------------------------------------------------------------------===//

#include "env/AssemblyGame.h"
#include "gpusim/pipeline/OperandFetch.h"
#include "gpusim/pipeline/WarpSelect.h"
#include "gpusim/pipeline/Writeback.h"
#include "kernels/Builder.h"
#include "rl/ActorCritic.h"
#include "sass/Parser.h"
#include "triton/Autotuner.h"

#include <benchmark/benchmark.h>

using namespace cuasmrl;
using namespace cuasmrl::kernels;

namespace {

struct Fixture {
  gpusim::Gpu Device;
  Rng DataRng{3};
  BuiltKernel Kernel;

  Fixture() {
    Kernel = buildKernel(Device, WorkloadKind::MmLeakyRelu,
                         paperShape(WorkloadKind::MmLeakyRelu),
                         candidateConfigs(WorkloadKind::MmLeakyRelu)
                             .front(),
                         ScheduleStyle::TritonO3, DataRng);
  }
};

Fixture &fixture() {
  static Fixture F;
  return F;
}

} // namespace

/// One timed simulation of the fused GEMM kernel (the reward oracle),
/// including the per-call program decode.
static void BM_TimedSimulation(benchmark::State &State) {
  Fixture &F = fixture();
  unsigned Resident = F.Device.residentBlocks(F.Kernel.Launch);
  for (auto _ : State) {
    gpusim::RunResult R = F.Device.run(F.Kernel.Prog, F.Kernel.Launch,
                                       gpusim::RunMode::Timed, Resident);
    benchmark::DoNotOptimize(R.Cycles);
  }
}
BENCHMARK(BM_TimedSimulation)->Unit(benchmark::kMillisecond);

/// The execute phase alone: timed simulation through a pre-decoded
/// kernel image (what the env pays per warmup/repeat iteration).
static void BM_TimedSimulationPredecoded(benchmark::State &State) {
  Fixture &F = fixture();
  gpusim::DecodedProgram Decoded(F.Kernel.Prog);
  unsigned Resident = F.Device.residentBlocks(F.Kernel.Launch);
  for (auto _ : State) {
    gpusim::RunResult R =
        F.Device.run(F.Kernel.Prog, Decoded, F.Kernel.Launch,
                     gpusim::RunMode::Timed, Resident);
    benchmark::DoNotOptimize(R.Cycles);
  }
}
BENCHMARK(BM_TimedSimulationPredecoded)->Unit(benchmark::kMillisecond);

/// The batch entry point: the same pre-decoded timed simulation, six
/// schedule lanes advanced in lockstep through Gpu::runBatch. Reported
/// per lane (items/s = lanes/s), so the row is directly comparable to
/// BM_TimedSimulationPredecoded — the delta is the batch engine's
/// overhead amortization, not a work reduction.
static void BM_TimedSimulationBatch(benchmark::State &State) {
  Fixture &F = fixture();
  constexpr size_t NumLanes = 6;
  gpusim::DecodedProgram Decoded(F.Kernel.Prog);
  unsigned Resident = F.Device.residentBlocks(F.Kernel.Launch);
  std::vector<gpusim::Gpu::BatchCandidate> Cands(
      NumLanes, {&F.Kernel.Prog, &Decoded});
  for (auto _ : State) {
    std::vector<gpusim::RunResult> R = F.Device.runBatch(
        Cands, F.Kernel.Launch, gpusim::RunMode::Timed, Resident);
    benchmark::DoNotOptimize(R.front().Cycles);
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(NumLanes));
}
BENCHMARK(BM_TimedSimulationBatch)->Unit(benchmark::kMillisecond);

/// The decode phase alone: building the pre-decoded kernel image.
static void BM_DecodeProgram(benchmark::State &State) {
  Fixture &F = fixture();
  for (auto _ : State) {
    gpusim::DecodedProgram D(F.Kernel.Prog);
    benchmark::DoNotOptimize(D.size());
  }
}
BENCHMARK(BM_DecodeProgram);

/// Architectural-oracle execution (probabilistic-testing reference).
static void BM_OracleSimulation(benchmark::State &State) {
  Fixture &F = fixture();
  unsigned Resident = F.Device.residentBlocks(F.Kernel.Launch);
  for (auto _ : State) {
    gpusim::RunResult R = F.Device.run(F.Kernel.Prog, F.Kernel.Launch,
                                       gpusim::RunMode::Oracle, Resident);
    benchmark::DoNotOptimize(R.Valid);
  }
}
BENCHMARK(BM_OracleSimulation)->Unit(benchmark::kMillisecond);

/// \name Stage-boundary rows
/// Each pipeline stage timed alone at its latch boundary, so a perf
/// regression inside one stage is attributable from the JSON artifact
/// without re-profiling the whole machine.
/// @{

/// Warp select: one sweep of probes over a resident warp set (the
/// per-scheduler-cycle cost when no warp is eligible).
static void BM_StageWarpSelectProbe(benchmark::State &State) {
  Fixture &F = fixture();
  gpusim::DecodedProgram Decoded(F.Kernel.Prog);
  std::vector<gpusim::WarpSimState> Warps(8);
  for (size_t I = 0; I < Warps.size(); ++I) {
    Warps[I].Pc = 0;
    Warps[I].NextIssue = 1; // Stall-rejected: probe cost, no issue.
  }
  gpusim::PerfCounters C;
  for (auto _ : State) {
    uint64_t MinReady = ~0ull;
    for (gpusim::WarpSimState &W : Warps)
      benchmark::DoNotOptimize(
          gpusim::WarpSelect::probe(W, Decoded, 0, C, MinReady));
    benchmark::DoNotOptimize(MinReady);
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(Warps.size()));
}
BENCHMARK(BM_StageWarpSelectProbe);

/// Operand fetch: the per-run bank-penalty tabulation (amortized away
/// from the per-issue path by the staged core).
static void BM_StageOperandPenaltyTable(benchmark::State &State) {
  Fixture &F = fixture();
  gpusim::DecodedProgram Decoded(F.Kernel.Prog);
  std::vector<uint16_t> Table;
  for (auto _ : State) {
    gpusim::OperandFetch::buildPenaltyTable(Decoded, 4, 2, Table);
    benchmark::DoNotOptimize(Table.data());
  }
}
BENCHMARK(BM_StageOperandPenaltyTable);

/// Writeback: event-queue churn with write-buffer recycling (push and
/// drain one batch of completion events per iteration).
static void BM_StageEventQueueChurn(benchmark::State &State) {
  gpusim::EventQueue Q;
  for (auto _ : State) {
    for (unsigned I = 0; I < 64; ++I) {
      std::vector<gpusim::DeferredWrite> Writes = Q.takeWriteBuf();
      Writes.push_back({gpusim::DeferredWrite::File::R,
                        static_cast<uint16_t>(I), I});
      Q.push({/*Cycle=*/(I * 7) % 32, /*Warp=*/static_cast<int>(I % 8),
              /*ReleaseSlot=*/-1, /*ReleaseBlock=*/-1, std::move(Writes)});
    }
    while (!Q.empty()) {
      gpusim::Event E = Q.pop();
      benchmark::DoNotOptimize(E.Cycle);
      Q.recycleWriteBuf(std::move(E.Writes));
    }
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) * 64);
}
BENCHMARK(BM_StageEventQueueChurn);

/// @}

/// SASS text parsing (disassembler output -> Program).
static void BM_ParseProgram(benchmark::State &State) {
  std::string Text = fixture().Kernel.Prog.str();
  for (auto _ : State) {
    Expected<sass::Program> P = sass::Parser::parseProgram(Text, "bench");
    benchmark::DoNotOptimize(P.hasValue());
  }
  State.SetBytesProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(Text.size()));
}
BENCHMARK(BM_ParseProgram);

/// State embedding (Figure 4) of the current schedule.
static void BM_Embedding(benchmark::State &State) {
  env::Embedding E(fixture().Kernel.Prog);
  for (auto _ : State) {
    std::vector<float> Obs = E.embed(fixture().Kernel.Prog);
    benchmark::DoNotOptimize(Obs.data());
  }
}
BENCHMARK(BM_Embedding);

/// Action-mask read as the rollout loop sees it (incrementally
/// maintained; a call is an O(actions) copy).
static void BM_ActionMask(benchmark::State &State) {
  Fixture &F = fixture();
  env::GameConfig G;
  G.Measure.WarmupIters = 1;
  G.Measure.RepeatIters = 1;
  env::AssemblyGame Game(F.Device, F.Kernel, G);
  for (auto _ : State) {
    std::vector<uint8_t> Mask = Game.actionMask();
    benchmark::DoNotOptimize(Mask.data());
  }
}
BENCHMARK(BM_ActionMask);

/// The mask phase at full cost: from-scratch legality sweep over every
/// movable pair (what actionMask() used to do on every call).
static void BM_ActionMaskFresh(benchmark::State &State) {
  Fixture &F = fixture();
  env::GameConfig G;
  G.Measure.WarmupIters = 1;
  G.Measure.RepeatIters = 1;
  env::AssemblyGame Game(F.Device, F.Kernel, G);
  for (auto _ : State) {
    std::vector<uint8_t> Mask = Game.actionMaskFresh();
    benchmark::DoNotOptimize(Mask.data());
  }
}
BENCHMARK(BM_ActionMaskFresh);

/// The hash phase: from-scratch schedule key (per-statement hashing).
static void BM_ScheduleKeyFresh(benchmark::State &State) {
  Fixture &F = fixture();
  for (auto _ : State) {
    gpusim::MeasurementCache::ScheduleKey Key =
        gpusim::MeasurementCache::keyFor(F.Kernel.Prog);
    benchmark::DoNotOptimize(Key.Primary);
  }
}
BENCHMARK(BM_ScheduleKeyFresh);

/// The hash phase as the env pays it: one O(1) swap update of the
/// maintained schedule key.
static void BM_ScheduleHashSwap(benchmark::State &State) {
  Fixture &F = fixture();
  gpusim::ScheduleHash H(F.Kernel.Prog);
  // Any adjacent instruction pair works: the update cost is uniform.
  size_t Upper = 0;
  while (Upper + 1 < F.Kernel.Prog.size() &&
         !(F.Kernel.Prog.stmt(Upper).isInstr() &&
           F.Kernel.Prog.stmt(Upper + 1).isInstr()))
    ++Upper;
  for (auto _ : State) {
    H.swap(Upper);
    benchmark::DoNotOptimize(H.key().Primary);
  }
}
BENCHMARK(BM_ScheduleHashSwap);

/// The embed phase as the env pays it: one adjacent row swap of the
/// cached observation matrix.
static void BM_EmbeddingRowSwap(benchmark::State &State) {
  Fixture &F = fixture();
  env::Embedding E(F.Kernel.Prog);
  std::vector<float> Obs = E.embed(F.Kernel.Prog);
  for (auto _ : State) {
    E.swapAdjacentRows(Obs, 0);
    benchmark::DoNotOptimize(Obs.data());
  }
}
BENCHMARK(BM_EmbeddingRowSwap);

/// Policy-network forward pass (CNN + MLP heads).
static void BM_NetForward(benchmark::State &State) {
  Fixture &F = fixture();
  env::Embedding E(F.Kernel.Prog);
  Rng R(1);
  rl::NetConfig NC;
  NC.Features = E.features();
  NC.Length = E.rows();
  NC.Actions = 32;
  rl::ActorCritic Net(NC, R);
  std::vector<float> Obs = E.embed(F.Kernel.Prog);
  std::vector<uint8_t> Mask(32, 1);
  for (auto _ : State) {
    rl::ActorCritic::Output Out = Net.forward(Obs, Mask);
    benchmark::DoNotOptimize(Out.Value.item());
  }
}
BENCHMARK(BM_NetForward);

BENCHMARK_MAIN();

//===- bench/bench_parallel_rollouts.cpp --------------------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Trajectory-collection throughput: the parallel rollout engine
/// (RolloutRunner, N worker threads, one shared MeasurementCache across
/// all games) against the single-env baseline (serial collection, one
/// private cache per game — the pre-engine behavior).
///
/// The policy is frozen and sharpened toward its argmax to model the
/// mid-training regime where agents concentrate ("lingering", §5.7.2)
/// — which is where training wall-clock is actually spent. Both engines
/// then collect the *identical* per-slot trajectories (per-slot Rng
/// streams plus order-invariant cache noise seeding guarantee this; the
/// bench verifies it), so the comparison is throughput on the same
/// work. Speedup comes from two stacked effects:
///   1. cache sharing: sibling games never re-simulate a schedule any
///      game has measured (the dominant effect on few-core hosts), and
///   2. worker threads: residual misses simulate concurrently (the
///      dominant effect on many-core hosts).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "rl/RolloutRunner.h"

#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

using namespace cuasmrl;

namespace {

constexpr unsigned kNumEnvs = 4;
constexpr unsigned kWorkers = 4;
constexpr uint64_t kSeed = 1;

struct Engine {
  std::vector<core::GameEnvAdapter *> Adapters;
  std::shared_ptr<gpusim::MeasurementCache> SharedCache; ///< Null: private.
  std::unique_ptr<rl::RolloutRunner> Runner;

  unsigned simulations() const {
    unsigned Total = 0;
    for (core::GameEnvAdapter *A : Adapters)
      Total += A->game().measurementsTaken();
    return Total;
  }
};

Engine makeEngine(gpusim::Gpu &Device, const kernels::BuiltKernel &Kernel,
                  bool ShareCache, unsigned Workers) {
  Engine E;
  if (ShareCache)
    E.SharedCache = std::make_shared<gpusim::MeasurementCache>(kSeed);
  std::vector<std::unique_ptr<rl::Env>> Envs;
  for (unsigned I = 0; I < kNumEnvs; ++I) {
    // The paper's full measurement protocol — 100 warmup + 100 timed
    // reps per reward (§3.6) — not the benches' stripped 1+1 training
    // protocol: collection throughput is about the regime where
    // measurement dominates the step, as it does on hardware.
    env::GameConfig GC;
    GC.Measure.WarmupIters = bench::fastMode() ? 10 : 100;
    GC.Measure.RepeatIters = bench::fastMode() ? 10 : 100;
    GC.SharedCache = E.SharedCache;
    GC.PrivateDevice = true; // Same footprint in both engines.
    auto Adapter = std::make_unique<core::GameEnvAdapter>(
        std::make_unique<env::AssemblyGame>(Device, Kernel, GC));
    E.Adapters.push_back(Adapter.get());
    Envs.push_back(std::move(Adapter));
  }
  rl::RolloutConfig RC;
  RC.Workers = Workers;
  RC.Seed = kSeed;
  E.Runner = std::make_unique<rl::RolloutRunner>(std::move(Envs), RC);
  return E;
}

struct Outcome {
  double Millis = 0.0;
  double StepsPerSec = 0.0;
  unsigned Simulations = 0;
  std::vector<double> SlotRewardSums;
};

Outcome runEngine(gpusim::Gpu &Device, const kernels::BuiltKernel &Kernel,
                  const rl::ActorCritic &Net, bool ShareCache,
                  unsigned Workers, unsigned Rounds, unsigned Steps,
                  std::shared_ptr<gpusim::MeasurementCache> *CacheOut) {
  auto Start = std::chrono::steady_clock::now();
  // Engine construction is timed: building the games is where the
  // baseline pays kNumEnvs initial-schedule measurements and the shared
  // engine pays one.
  Engine E = makeEngine(Device, Kernel, ShareCache, Workers);
  Outcome Out;
  for (unsigned R = 0; R < Rounds; ++R) {
    rl::TrajectoryBatch Batch = E.Runner->collect(Net, Steps);
    for (const rl::Trajectory &T : Batch.Trajectories)
      Out.SlotRewardSums.push_back(T.rewardSum());
  }
  auto End = std::chrono::steady_clock::now();
  Out.Millis =
      std::chrono::duration<double, std::milli>(End - Start).count();
  Out.StepsPerSec =
      1000.0 * Rounds * Steps * kNumEnvs / std::max(0.001, Out.Millis);
  Out.Simulations = E.simulations();
  if (CacheOut)
    *CacheOut = E.SharedCache;
  return Out;
}

} // namespace

int main() {
  gpusim::Gpu Device;
  Rng DataRng(7);
  kernels::WorkloadKind Kind = kernels::WorkloadKind::MmLeakyRelu;
  kernels::BuiltKernel Kernel = kernels::buildKernel(
      Device, Kind, kernels::testShape(Kind),
      kernels::candidateConfigs(Kind).front(),
      kernels::ScheduleStyle::TritonO3, DataRng);

  // One cold-cache PPO iteration: later iterations are ~fully cached
  // in BOTH engines (equal cost), so they only dilute the comparison.
  const unsigned Rounds = 1;
  const unsigned Steps = 64; // One PPO iteration's RolloutLen.

  // A frozen policy with the head sharpened toward its argmax: the
  // concentrated (mid-training) sampling distribution. parameters()
  // order is stable (W1,B1,W2,B2,Wh,Bh,Wp,Bp,Wv,Bv); 6/7 are the
  // policy head.
  env::GameConfig ProbeGC = bench::trainingGameConfig();
  env::AssemblyGame Probe(Device, Kernel, ProbeGC);
  rl::NetConfig NC;
  NC.Features = Probe.obsFeatures();
  NC.Length = Probe.obsRows();
  NC.Actions = Probe.actionCount();
  Rng NetRng(kSeed);
  rl::ActorCritic Net(NC, NetRng);
  // The head initializes with gain 0.01 (near-uniform logits); x4000
  // lifts the logit spread past the sampling temperature, i.e. a
  // converged policy replaying its discovered move sequence.
  std::vector<rl::Tensor> Params = Net.parameters();
  for (size_t P : {size_t(6), size_t(7)})
    for (float &W : Params[P].data())
      W *= 4000.0f;

  std::printf("bench_parallel_rollouts: %u envs, %u steps/rollout, "
              "%u rounds, kernel %s\n\n",
              kNumEnvs, Steps, Rounds, Kernel.Name.c_str());

  Outcome Base = runEngine(Device, Kernel, Net, /*ShareCache=*/false,
                           /*Workers=*/1, Rounds, Steps, nullptr);
  std::shared_ptr<gpusim::MeasurementCache> Cache;
  Outcome Par = runEngine(Device, Kernel, Net, /*ShareCache=*/true,
                          /*Workers=*/kWorkers, Rounds, Steps, &Cache);

  bool Identical = Base.SlotRewardSums == Par.SlotRewardSums;
  double Speedup = Base.Millis / std::max(0.001, Par.Millis);

  std::printf("%-34s %10s %12s %8s\n", "engine", "wall ms", "steps/s",
              "sims");
  std::printf("%-34s %10.1f %12.0f %8u\n",
              "serial, private caches (baseline)", Base.Millis,
              Base.StepsPerSec, Base.Simulations);
  std::printf("%-34s %10.1f %12.0f %8u\n", "4 workers, shared cache",
              Par.Millis, Par.StepsPerSec, Par.Simulations);
  std::printf("\ntrajectory-collection speedup: %.2fx\n", Speedup);
  std::printf("identical per-slot trajectories: %s\n",
              Identical ? "yes" : "NO (BUG)");
  if (Cache)
    std::printf("shared MeasurementCache: %llu hits, %llu misses "
                "(hit rate %.1f%%, %zu schedules)\n",
                static_cast<unsigned long long>(Cache->hits()),
                static_cast<unsigned long long>(Cache->misses()),
                100.0 * Cache->hitRate(), Cache->size());
  // CUASMRL_FAST shrinks the measurement protocol 10x (smoke mode), so
  // the throughput target is only meaningful at full protocol weight.
  bool Pass = Identical && (Speedup >= 2.0 || bench::fastMode());
  std::printf("\n%s: %.2fx %s 2x target at %u workers%s\n",
              Pass ? "PASS" : "FAIL", Speedup,
              Speedup >= 2.0 ? ">=" : "<", kWorkers,
              bench::fastMode() ? " (smoke mode: target not enforced)"
                                : "");
  return Pass ? 0 : 1;
}

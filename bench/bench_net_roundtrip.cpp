//===- bench/bench_net_roundtrip.cpp - RPC front-door overhead ---------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// What the network front door costs on the §4.2 online-lookup path.
/// One deploy cache is seeded with a handful of keys (untimed), then
/// the same warm request stream is driven three ways:
///
///   - in-process: OptimizationService::submit + future wait — the
///     floor every RPC number is compared against;
///   - net sequential: one net::Client call() per request over
///     loopback TCP — per-request round-trip latency;
///   - net pipelined: all requests framed onto the connection before
///     any response is read — the throughput shape serve_client uses.
///
/// The determinism contract must hold across the wire: every network
/// response is required to be bit-identical (status, key, cubin bytes,
/// result scalars — everything but wall time) to the in-process
/// response for the same request, and the report carries that check as
/// extra.identical_results. DecodeErrors and QuotaRejections are
/// emitted as exact-match net_count_* metrics: a clean loopback run
/// produces exactly zero of each, so any nonzero value is a framing
/// regression, not noise.
///
/// Emits a machine-readable JSON report (see tools/run_benchmarks.py):
///
///   bench_net_roundtrip [--json PATH] [--requests N] [--workers N]
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "net/Client.h"
#include "net/Server.h"
#include "serve/OptimizationService.h"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

using namespace cuasmrl;
using namespace cuasmrl::kernels;
using namespace cuasmrl::serve;

namespace {

constexpr uint64_t kSeed = 17;

core::OptimizeConfig jobConfig() {
  core::OptimizeConfig C;
  C.Ppo.TotalSteps = bench::fastMode() ? 32 : 64;
  C.Ppo.RolloutLen = 16;
  C.Ppo.MiniBatches = 2;
  C.Ppo.Epochs = 2;
  C.Ppo.Channels = 4;
  C.Ppo.Hidden = 16;
  C.Game.EpisodeLength = 8;
  C.Game.Measure.WarmupIters = 1;
  C.Game.Measure.RepeatIters = 1;
  C.AutotuneMeasure.WarmupIters = 1;
  C.AutotuneMeasure.RepeatIters = 2;
  C.ProbTestRounds = 1;
  return C;
}

OptimizeRequest request(WorkloadKind Kind, unsigned ScaleRows) {
  OptimizeRequest R;
  R.Kind = Kind;
  R.Shape = testShape(Kind);
  R.Shape.Rows *= ScaleRows;
  return R;
}

/// The warm key set; the timed streams cycle through these so every
/// request resolves as a deploy-cache lookup hit.
std::vector<OptimizeRequest> warmKeys() {
  return {request(WorkloadKind::Softmax, 1), request(WorkloadKind::Softmax, 2),
          request(WorkloadKind::RmsNorm, 1), request(WorkloadKind::RmsNorm, 2)};
}

ServiceConfig serviceConfig(const std::string &DeployDir, unsigned Workers) {
  ServiceConfig SC;
  SC.Seed = kSeed;
  SC.DeployDir = DeployDir;
  SC.Defaults = jobConfig();
  SC.Workers = Workers;
  return SC;
}

/// Everything but WallMs, which measures wall clock and is exempt from
/// the bit-identity contract.
bool wireIdentical(const net::WireResponse &A, const net::WireResponse &B) {
  return A.St == B.St && A.Key == B.Key && A.HasBinary == B.HasBinary &&
         A.Binary.serialize() == B.Binary.serialize() &&
         A.Persisted == B.Persisted && A.DegradedFrom == B.DegradedFrom &&
         A.WarmStartedFrom == B.WarmStartedFrom && A.Error == B.Error &&
         A.AutotuneValid == B.AutotuneValid && A.Verified == B.Verified &&
         A.TritonUs == B.TritonUs && A.OptimizedUs == B.OptimizedUs &&
         A.TrainingUpdates == B.TrainingUpdates &&
         A.WarmStartTensors == B.WarmStartTensors;
}

double elapsedMs(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

} // namespace

int main(int argc, char **argv) {
  std::string JsonPath;
  unsigned Requests = bench::fastMode() ? 16 : 64;
  unsigned Workers = 2;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--json" && I + 1 < argc)
      JsonPath = argv[++I];
    else if (Arg == "--requests" && I + 1 < argc)
      Requests = static_cast<unsigned>(std::atoi(argv[++I]));
    else if (Arg == "--workers" && I + 1 < argc)
      Workers = static_cast<unsigned>(std::atoi(argv[++I]));
    else {
      std::fprintf(stderr, "usage: %s [--json PATH] [--requests N] "
                           "[--workers N]\n",
                   argv[0]);
      return 2;
    }
  }

  gpusim::Gpu Device;
  std::string DeployDir =
      (std::filesystem::temp_directory_path() / "cuasmrl_bench_net").string();
  std::filesystem::remove_all(DeployDir);

  std::vector<OptimizeRequest> Keys = warmKeys();
  std::vector<OptimizeRequest> Stream;
  for (unsigned I = 0; I < Requests; ++I)
    Stream.push_back(Keys[I % Keys.size()]);

  std::printf("bench_net_roundtrip: %u warm requests over %zu keys\n\n",
              Requests, Keys.size());

  {
    // Seed phase (untimed): populate the deploy cache once.
    OptimizationService Seeder(Device, serviceConfig(DeployDir, Workers));
    for (const OptimizeRequest &R : Keys)
      Seeder.submit(R);
    Seeder.drain();
    Seeder.shutdown();
  }

  // Baseline: the same stream submitted in-process against the warm
  // cache. Responses are kept in wire-summary form for the identity
  // check below.
  std::vector<net::WireResponse> InProc;
  double InProcMs = 0.0;
  {
    OptimizationService Service(Device, serviceConfig(DeployDir, Workers));
    auto Start = std::chrono::steady_clock::now();
    for (const OptimizeRequest &R : Stream) {
      Ticket T = Service.submit(R);
      InProc.push_back(net::summarizeResponse(*T.Response.get()));
    }
    InProcMs = elapsedMs(Start);
    Service.shutdown();
  }

  // The network runs share one server over a fresh service on the same
  // warm cache.
  OptimizationService Service(Device, serviceConfig(DeployDir, Workers));
  net::ServerConfig NC;
  NC.Port = 0; // Ephemeral.
  net::Server Server(Service, NC);
  Expected<uint16_t> Bound = Server.start();
  if (!Bound) {
    std::fprintf(stderr, "bench_net_roundtrip: %s\n",
                 Bound.error().message().c_str());
    return 1;
  }
  net::ClientConfig CC;
  CC.Port = *Bound;

  // Net sequential: one call per request, full round trip each time.
  std::vector<net::WireResponse> Sequential;
  double SequentialMs = 0.0;
  {
    net::Client Client(CC);
    auto Start = std::chrono::steady_clock::now();
    for (const OptimizeRequest &R : Stream) {
      Expected<net::WireResponse> Resp = Client.call(R);
      if (!Resp) {
        std::fprintf(stderr, "bench_net_roundtrip: call: %s\n",
                     Resp.error().message().c_str());
        return 1;
      }
      Sequential.push_back(std::move(*Resp));
    }
    SequentialMs = elapsedMs(Start);
  }

  // Net pipelined: the whole stream framed before any response is
  // read; responses matched back by request id.
  std::vector<net::WireResponse> Pipelined(Stream.size());
  double PipelinedMs = 0.0;
  {
    net::Client Client(CC);
    auto Start = std::chrono::steady_clock::now();
    std::map<uint64_t, size_t> IdToIndex;
    for (size_t I = 0; I < Stream.size(); ++I) {
      Expected<uint64_t> Id = Client.send(Stream[I]);
      if (!Id) {
        std::fprintf(stderr, "bench_net_roundtrip: send: %s\n",
                     Id.error().message().c_str());
        return 1;
      }
      IdToIndex[*Id] = I;
    }
    for (size_t I = 0; I < Stream.size(); ++I) {
      Expected<std::pair<uint64_t, net::WireResponse>> Next =
          Client.receive();
      if (!Next) {
        std::fprintf(stderr, "bench_net_roundtrip: receive: %s\n",
                     Next.error().message().c_str());
        return 1;
      }
      Pipelined[IdToIndex.at(Next->first)] = std::move(Next->second);
    }
    PipelinedMs = elapsedMs(Start);
  }

  net::NetStats NS = Server.stats();
  ServiceStats SS = Service.stats();
  Server.stop();
  Service.shutdown();
  std::filesystem::remove_all(DeployDir);

  bool Identical = true;
  for (size_t I = 0; I < Stream.size(); ++I)
    if (!wireIdentical(InProc[I], Sequential[I]) ||
        !wireIdentical(InProc[I], Pipelined[I]))
      Identical = false;

  const double N = std::max(1u, Requests);
  double InProcUs = 1000.0 * InProcMs / N;
  double SequentialUs = 1000.0 * SequentialMs / N;
  double PipelinedUs = 1000.0 * PipelinedMs / N;

  std::printf("%-24s %10s %14s %14s\n", "path", "wall ms", "us/request",
              "requests/s");
  std::printf("%-24s %10.2f %14.1f %14.1f\n", "in-process", InProcMs,
              InProcUs, 1000.0 * N / std::max(0.001, InProcMs));
  std::printf("%-24s %10.2f %14.1f %14.1f\n", "net sequential",
              SequentialMs, SequentialUs,
              1000.0 * N / std::max(0.001, SequentialMs));
  std::printf("%-24s %10.2f %14.1f %14.1f\n", "net pipelined", PipelinedMs,
              PipelinedUs, 1000.0 * N / std::max(0.001, PipelinedMs));
  std::printf("\nround-trip overhead: %.1f us/request sequential, "
              "%.1f us/request pipelined\n",
              SequentialUs - InProcUs, PipelinedUs - InProcUs);
  std::printf("bit-identical to in-process: %s\n",
              Identical ? "yes" : "NO (BUG)");

  stats::BenchReport Rep("net_roundtrip", bench::reportMeta());
  Rep.addMetric("inproc_ms", InProcMs, "ms", /*HigherIsBetter=*/false);
  Rep.addMetric("net_sequential_ms", SequentialMs, "ms",
                /*HigherIsBetter=*/false);
  Rep.addMetric("net_pipelined_ms", PipelinedMs, "ms",
                /*HigherIsBetter=*/false);
  Rep.addMetric("inproc_us_per_request", InProcUs, "us",
                /*HigherIsBetter=*/false);
  Rep.addMetric("net_sequential_us_per_request", SequentialUs, "us",
                /*HigherIsBetter=*/false);
  Rep.addMetric("net_pipelined_us_per_request", PipelinedUs, "us",
                /*HigherIsBetter=*/false);
  Rep.addMetric("net_pipelined_requests_per_sec",
                1000.0 * N / std::max(0.001, PipelinedMs), "requests/s");
  // Framing health: exactly zero on a clean loopback run, gated as an
  // exact match by tools/bench_compare.py.
  Rep.addMetric("net_count_decode_errors", double(NS.DecodeErrors), "count");
  Rep.addMetric("net_count_quota_rejections", double(NS.QuotaRejections),
                "count");
  Rep.setNetStats(NS);
  Rep.setServiceStats(SS);

  stats::JsonValue Extra = stats::JsonValue::object();
  Extra.set("requests", stats::JsonValue(uint64_t(Requests)));
  Extra.set("warm_keys", stats::JsonValue(uint64_t(Keys.size())));
  Extra.set("workers", stats::JsonValue(Workers));
  Extra.set("identical_results", stats::JsonValue(Identical));
  Rep.setExtra(std::move(Extra));
  if (!bench::emitReport(Rep, JsonPath))
    return 1;

  // The net service saw the sequential and pipelined streams; every
  // one of those requests must have been a warm lookup hit.
  bool Pass = Identical && NS.DecodeErrors == 0 && NS.QuotaRejections == 0 &&
              SS.LookupHits == uint64_t(2) * Requests;
  std::printf("\n%s: %llu lookup hits over the two network streams, "
              "%llu decode errors\n",
              Pass ? "PASS" : "FAIL",
              static_cast<unsigned long long>(SS.LookupHits),
              static_cast<unsigned long long>(NS.DecodeErrors));
  return Pass ? 0 : 1;
}

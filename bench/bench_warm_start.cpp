//===- bench/bench_warm_start.cpp - warm-start vs from-scratch training -----===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures the generalist-policy payoff: how many PPO updates a
/// warm-started agent needs to match the from-scratch winner. A donor
/// policy is trained on a near shape of the same kernel (conditioned
/// embedding, shared operand-slot width — exactly what
/// serve::PolicyStore hands a cache-miss job), then the target shape
/// is trained twice from the same seed: cold (orthogonal init) and
/// warm (ActorCritic::loadCompatible from the donor checkpoint). Both
/// best-time trajectories are reported update by update; the headline
/// metrics are the number of updates each run needs to first reach the
/// cold run's final best time.
///
/// Outside CUASMRL_FAST smoke mode the bench FAILS (exit 1) when the
/// warm run needs more updates than the cold run or no tensors
/// transferred — the generalist warm start must never be worse than a
/// fresh init on this paired-seed protocol.
///
/// Emits a machine-readable JSON report (see tools/run_benchmarks.py):
///
///   bench_warm_start [--json PATH] [--steps N]
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "analysis/OperandTable.h"
#include "support/StringUtils.h"
#include "support/Table.h"

#include <algorithm>
#include <iostream>
#include <sstream>

using namespace cuasmrl;
using namespace cuasmrl::bench;
using namespace cuasmrl::kernels;

namespace {

/// Paired seed for the cold and warm target runs; the donor trains on
/// its own stream so its policy is independent of the comparison.
constexpr uint64_t kDonorSeed = 7;
constexpr uint64_t kTargetSeed = 9;

env::GameConfig conditionedGameConfig(WorkloadKind Kind,
                                      const WorkloadShape &Shape,
                                      size_t OperandSlots) {
  env::GameConfig G = trainingGameConfig();
  env::WorkloadContext Ctx;
  Ctx.Kind = Kind;
  Ctx.Shape = Shape;
  Ctx.OperandSlots = OperandSlots;
  G.Context = Ctx;
  return G;
}

/// One training run: per-update best-time trajectory plus the final
/// converged numbers.
struct Trajectory {
  std::vector<double> BestUsPerUpdate;
  double TritonUs = 0.0;
  double BestUs = 0.0;
  size_t TransferredTensors = 0;
};

Trajectory runTraining(gpusim::Gpu &Device, const BuiltKernel &Kernel,
                       WorkloadKind Kind, const WorkloadShape &Shape,
                       size_t OperandSlots, unsigned TotalSteps,
                       uint64_t Seed, const std::string *WarmBlob) {
  env::AssemblyGame Game(Device, Kernel,
                         conditionedGameConfig(Kind, Shape, OperandSlots));
  core::GameEnvAdapter Env(Game);
  rl::PpoConfig PC = benchPpoConfig(TotalSteps, Seed);
  rl::PpoTrainer Trainer({&Env}, PC);
  Trajectory Out;
  if (WarmBlob)
    Out.TransferredTensors = Trainer.warmStartFrom(*WarmBlob);
  unsigned Updates = std::max(1u, TotalSteps / PC.RolloutLen);
  Out.BestUsPerUpdate.reserve(Updates);
  for (unsigned U = 0; U < Updates; ++U) {
    Trainer.update();
    Out.BestUsPerUpdate.push_back(Game.bestTimeUs());
  }
  Out.TritonUs = Game.initialTimeUs();
  Out.BestUs = Game.bestTimeUs();
  return Out;
}

/// First update (1-based) whose best time is at or below \p Target;
/// Trajectory-length + 1 when never reached.
unsigned updatesToReach(const std::vector<double> &Traj, double Target) {
  const double Eps = Target * 1e-9;
  for (size_t I = 0; I < Traj.size(); ++I)
    if (Traj[I] <= Target + Eps)
      return static_cast<unsigned>(I) + 1;
  return static_cast<unsigned>(Traj.size()) + 1;
}

std::string serializeNet(const rl::ActorCritic &Net) {
  std::ostringstream OS;
  Net.save(OS);
  return OS.str();
}

} // namespace

int main(int argc, char **argv) {
  std::string JsonPath;
  unsigned Steps = 0;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--json" && I + 1 < argc)
      JsonPath = argv[++I];
    else if (Arg == "--steps" && I + 1 < argc)
      Steps = static_cast<unsigned>(std::atoi(argv[++I]));
    else {
      std::fprintf(stderr, "usage: %s [--json PATH] [--steps N]\n", argv[0]);
      return 2;
    }
  }
  if (!Steps)
    Steps = stepsBudget(2048);

  std::cout << "== Warm start: generalist policy transfer vs from-scratch "
               "training ==\n("
            << Steps << " steps per run, softmax donor/target shapes)\n\n";

  gpusim::Gpu Device;
  Rng DataRng(3);
  WorkloadKind Kind = WorkloadKind::Softmax;
  WorkloadShape TargetShape = testShape(Kind);
  WorkloadShape DonorShape = TargetShape;
  DonorShape.Rows *= 2; // The "nearest stored shape" a PolicyStore finds.

  BuiltKernel Donor = buildKernel(Device, Kind, DonorShape,
                                  candidateConfigs(Kind).front(),
                                  ScheduleStyle::TritonO3, DataRng);
  BuiltKernel Target = buildKernel(Device, Kind, TargetShape,
                                   candidateConfigs(Kind).front(),
                                   ScheduleStyle::TritonO3, DataRng);
  // Shared slot width across both shapes — the mixed-pool contract the
  // serving path uses, and what makes the donor checkpoint geometry-
  // compatible with the target net.
  size_t OperandSlots = std::max(
      analysis::OperandTable::build(Donor.Prog).maxOperands(),
      analysis::OperandTable::build(Target.Prog).maxOperands());

  // Donor policy: trained on the near shape, serialized exactly like
  // core::OptimizeResult::PolicyBlob / serve::PolicyStore contents.
  std::string DonorBlob;
  {
    env::AssemblyGame Game(Device, Donor,
                           conditionedGameConfig(Kind, DonorShape,
                                                 OperandSlots));
    core::GameEnvAdapter Env(Game);
    rl::PpoTrainer Trainer({&Env}, benchPpoConfig(Steps, kDonorSeed));
    Trainer.train();
    DonorBlob = serializeNet(Trainer.net());
  }

  Trajectory Cold = runTraining(Device, Target, Kind, TargetShape,
                                OperandSlots, Steps, kTargetSeed, nullptr);
  Trajectory Warm = runTraining(Device, Target, Kind, TargetShape,
                                OperandSlots, Steps, kTargetSeed, &DonorBlob);

  double TargetUs = Cold.BestUs;
  unsigned ColdUpdates = updatesToReach(Cold.BestUsPerUpdate, TargetUs);
  unsigned WarmUpdates = updatesToReach(Warm.BestUsPerUpdate, TargetUs);
  bool WarmReached = WarmUpdates <= Warm.BestUsPerUpdate.size();

  Table Out({"update", "cold best us", "warm best us"});
  size_t N = Cold.BestUsPerUpdate.size();
  for (size_t I = 0; I < N; I += std::max<size_t>(1, N / 16))
    Out.addRow({std::to_string(I + 1),
                formatDouble(Cold.BestUsPerUpdate[I], 3),
                formatDouble(Warm.BestUsPerUpdate[I], 3)});
  Out.print(std::cout);

  std::cout << "\ntriton baseline:     " << formatDouble(Cold.TritonUs, 3)
            << " us\ncold final best:     " << formatDouble(Cold.BestUs, 3)
            << " us (winner after " << ColdUpdates
            << " updates)\nwarm final best:     "
            << formatDouble(Warm.BestUs, 3) << " us\nwarm reaches winner: "
            << (WarmReached ? "update " + std::to_string(WarmUpdates)
                            : std::string("never"))
            << "\ntensors transferred: " << Warm.TransferredTensors << "\n";

  stats::BenchReport Rep("warm_start", reportMeta());
  Rep.addMetric("cold_updates_to_winner", double(ColdUpdates), "updates",
                /*HigherIsBetter=*/false);
  Rep.addMetric("warm_updates_to_winner", double(WarmUpdates), "updates",
                /*HigherIsBetter=*/false);
  Rep.addMetric("update_savings",
                double(ColdUpdates) / std::max(1.0, double(WarmUpdates)),
                "x");
  Rep.addMetric("cold_best_us", Cold.BestUs, "us", /*HigherIsBetter=*/false);
  Rep.addMetric("warm_best_us", Warm.BestUs, "us", /*HigherIsBetter=*/false);
  Rep.addMetric("warm_start_tensors", double(Warm.TransferredTensors),
                "count");

  auto TrajJson = [](const std::vector<double> &Traj) {
    stats::JsonValue Arr = stats::JsonValue::array();
    for (double V : Traj)
      Arr.push(stats::JsonValue(V));
    return Arr;
  };
  stats::JsonValue Extra = stats::JsonValue::object();
  Extra.set("steps", stats::JsonValue(static_cast<uint64_t>(Steps)));
  Extra.set("triton_us", stats::JsonValue(Cold.TritonUs));
  Extra.set("warm_reached_winner", stats::JsonValue(WarmReached));
  Extra.set("cold_trajectory_us", TrajJson(Cold.BestUsPerUpdate));
  Extra.set("warm_trajectory_us", TrajJson(Warm.BestUsPerUpdate));
  Rep.setExtra(std::move(Extra));

  if (!emitReport(Rep, JsonPath))
    return 1;

  // In smoke mode the budget is too small for the trajectories to be
  // meaningful, so the gate is advisory only.
  bool Pass = Warm.TransferredTensors > 0 && WarmUpdates <= ColdUpdates;
  std::cout << "\n"
            << (Pass ? "PASS" : (fastMode() ? "WARN (fast mode)" : "FAIL"))
            << ": warm start reached the cold winner in " << WarmUpdates
            << " vs " << ColdUpdates << " updates ("
            << Warm.TransferredTensors << " tensors transferred)\n";
  return (Pass || fastMode()) ? 0 : 1;
}

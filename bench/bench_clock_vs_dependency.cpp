//===- bench/bench_clock_vs_dependency.cpp - §4.3 methodology comparison -----===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Reproduces the paper's critique of clock-based microbenchmarking
// (§4.3, Listings 6/7): bracketing an instruction sequence with CS2R
// clock reads underestimates the stall count, because nothing guarantees
// the sequence *completed* at the second read (the paper measures 2.6
// cycles for IADD3 against the true 4). The dependency-based method is
// exact by construction.
//
//===----------------------------------------------------------------------===//

#include "analysis/MicroBench.h"
#include "sass/Opcode.h"
#include "support/StringUtils.h"
#include "support/Table.h"

#include <iostream>

using namespace cuasmrl;
using namespace cuasmrl::analysis;

int main() {
  std::cout << "== clock-based vs dependency-based stall measurement "
               "(paper §4.3) ==\n\n";

  Table Out({"instruction", "clock-based (cycles)", "dependency-based",
             "ground truth", "clock underestimates"});
  bool AllUnder = true;
  for (const char *Key :
       {"IADD3", "IMAD", "MOV", "FADD", "LEA", "SEL", "FFMA"}) {
    std::optional<double> Clock = clockBasedStall(Key);
    std::optional<unsigned> Dep = dependencyStallCount(Key);
    std::optional<unsigned> Truth = sass::groundTruthLatency(Key);
    bool Under = Clock && Dep && *Clock < static_cast<double>(*Dep);
    AllUnder = AllUnder && Under;
    Out.addRow({Key, Clock ? formatDouble(*Clock, 2) : "-",
                Dep ? std::to_string(*Dep) : "-",
                Truth ? std::to_string(*Truth) : "-",
                Under ? "yes" : "NO"});
  }
  Out.print(std::cout);

  std::cout << "\npaper: clock-based IADD3 measures ~2.6 cycles vs the "
               "true 4;\nthe simulator reproduces the direction (clock < "
               "dependency = truth)\nbecause the clock reads at issue "
               "time, before the sequence retires.\n";
  return AllUnder ? 0 : 1;
}

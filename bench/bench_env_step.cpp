//===- bench/bench_env_step.cpp - env-step throughput benchmark --------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Single-env step throughput of the assembly game on the GEMM and
// attention kernels — the number that bounds rollout collection speed —
// plus a per-phase breakdown (decode / execute / mask / hash / embed) so
// the perf trajectory of each hot-path component is tracked across PRs.
//
// Emits a machine-readable JSON report (see tools/run_benchmarks.py):
//
//   bench_env_step [--json PATH] [--steps N] [--paper]
//
// Env overrides: CUASMRL_STEPS (step budget), CUASMRL_FAST=1 (1/8 budget).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "env/AssemblyGame.h"
#include "kernels/Builder.h"
#include "sass/Parser.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace cuasmrl;
using namespace cuasmrl::kernels;

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point Start) {
  return std::chrono::duration<double>(Clock::now() - Start).count();
}

/// Rates of the individual per-step phases, in operations per second.
struct PhaseRates {
  double MaskCached = 0.0;  ///< actionMask() as the env exposes it.
  double MaskFresh = 0.0;   ///< Full O(program) legality sweep.
  double HashKey = 0.0;     ///< Schedule key as measure() obtains it.
  double HashFresh = 0.0;   ///< From-scratch schedule key.
  double Embed = 0.0;       ///< Full observation rebuild.
  double Decode = 0.0;      ///< Pre-decoded kernel image build.
  double SimTimed = 0.0;    ///< One timed simulation (execute phase).
};

struct KernelReport {
  std::string Name;
  unsigned Steps = 0;
  double Seconds = 0.0;
  double StepsPerSec = 0.0;
  double CacheHitRate = 0.0;
  PhaseRates Phases;
  gpusim::PerfCounters Counters; ///< From one timed simulation.
};

unsigned stepBudget(unsigned Default) {
  if (const char *Env = std::getenv("CUASMRL_STEPS"))
    if (unsigned V = static_cast<unsigned>(std::atoi(Env)))
      Default = V;
  if (const char *Fast = std::getenv("CUASMRL_FAST"))
    if (std::strcmp(Fast, "1") == 0)
      Default = std::max(64u, Default / 8);
  return Default;
}

/// Times \p Fn repeatedly for ~\p Budget seconds; returns calls/second.
template <typename Fn> double rate(double Budget, Fn &&Body) {
  // One untimed call warms caches and proves the operation works.
  Body();
  uint64_t Calls = 0;
  Clock::time_point Start = Clock::now();
  double Elapsed = 0.0;
  do {
    Body();
    ++Calls;
    Elapsed = secondsSince(Start);
  } while (Elapsed < Budget);
  return static_cast<double>(Calls) / Elapsed;
}

KernelReport benchKernel(WorkloadKind Kind, unsigned Steps, bool Paper) {
  KernelReport Rep;
  Rep.Name = workloadName(Kind);
  Rep.Steps = Steps;

  gpusim::Gpu Device;
  Rng DataRng(7);
  WorkloadShape Shape = Paper ? paperShape(Kind) : testShape(Kind);
  BuiltKernel Kernel =
      buildKernel(Device, Kind, Shape, candidateConfigs(Kind).front(),
                  ScheduleStyle::TritonO3, DataRng);

  env::GameConfig Config;
  Config.Measure.WarmupIters = 1;
  Config.Measure.RepeatIters = 1;
  Config.Measure.NoiseStddev = 0.001;
  Config.RecordTrace = false;
  env::AssemblyGame Game(Device, Kernel, Config);

  // --- end-to-end step throughput (random legal-action walk) ------------
  Rng Walk(1);
  Game.reset();
  std::vector<unsigned> Legal;
  unsigned Performed = 0; // Actual step() calls (reset-only laps excluded).
  Clock::time_point Start = Clock::now();
  for (unsigned Lap = 0; Lap < Steps; ++Lap) {
    std::vector<uint8_t> Mask = Game.actionMask();
    Legal.clear();
    for (unsigned A = 0; A < Mask.size(); ++A)
      if (Mask[A])
        Legal.push_back(A);
    if (Legal.empty()) {
      Game.reset();
      continue;
    }
    unsigned Action = Legal[Walk.uniformInt(Legal.size())];
    env::AssemblyGame::StepResult R = Game.step(Action);
    ++Performed;
    if (R.Done)
      Game.reset();
  }
  Rep.Seconds = secondsSince(Start);
  Rep.Steps = Performed;
  Rep.StepsPerSec = Performed / Rep.Seconds;
  if (const gpusim::MeasurementCache *Cache = Game.measurementCache())
    Rep.CacheHitRate = Cache->hitRate();

  // --- per-phase rates ---------------------------------------------------
  const double Budget = 0.2; // Seconds per phase probe.
  Rep.Phases.MaskCached = rate(Budget, [&] {
    std::vector<uint8_t> M = Game.actionMask();
    (void)M;
  });
  Rep.Phases.MaskFresh = rate(Budget, [&] {
    std::vector<uint8_t> M = Game.actionMaskFresh();
    (void)M;
  });
  Rep.Phases.HashKey = rate(Budget, [&] { (void)Game.scheduleKey(); });
  Rep.Phases.HashFresh = rate(Budget, [&] {
    (void)gpusim::MeasurementCache::keyFor(Game.current());
  });
  env::Embedding Embed(Kernel.Prog);
  Rep.Phases.Embed = rate(Budget, [&] {
    std::vector<float> Obs = Embed.embed(Game.current());
    (void)Obs;
  });
  Rep.Phases.Decode = rate(Budget, [&] {
    gpusim::DecodedProgram D(Game.current());
    (void)D;
  });
  unsigned Resident = Device.residentBlocks(Kernel.Launch);
  Rep.Phases.SimTimed = rate(Budget, [&] {
    gpusim::RunResult R = Device.run(Game.current(), Kernel.Launch,
                                     gpusim::RunMode::Timed, Resident);
    Rep.Counters = R.Counters;
  });
  return Rep;
}

stats::BenchReport buildReport(const std::vector<KernelReport> &Reports,
                               unsigned Steps, bool Paper) {
  stats::BenchReport Rep("env_step", bench::reportMeta());
  gpusim::PerfCounters Total;
  stats::JsonValue Kernels = stats::JsonValue::array();
  for (const KernelReport &R : Reports) {
    Rep.addMetric(R.Name + ".steps_per_sec", R.StepsPerSec, "steps/s");
    Rep.addMetric(R.Name + ".measure_cache_hit_rate", R.CacheHitRate,
                  "fraction");
    Rep.addMetric(R.Name + ".phase.mask_cached", R.Phases.MaskCached,
                  "ops/s");
    Rep.addMetric(R.Name + ".phase.mask_fresh", R.Phases.MaskFresh, "ops/s");
    Rep.addMetric(R.Name + ".phase.hash_key", R.Phases.HashKey, "ops/s");
    Rep.addMetric(R.Name + ".phase.hash_fresh", R.Phases.HashFresh, "ops/s");
    Rep.addMetric(R.Name + ".phase.embed_full", R.Phases.Embed, "ops/s");
    Rep.addMetric(R.Name + ".phase.decode_full", R.Phases.Decode, "ops/s");
    Rep.addMetric(R.Name + ".phase.sim_timed", R.Phases.SimTimed, "ops/s");
    Total += R.Counters;

    stats::JsonValue K = stats::JsonValue::object();
    K.set("name", stats::JsonValue(R.Name));
    K.set("steps", stats::JsonValue(R.Steps));
    K.set("seconds", stats::JsonValue(R.Seconds));
    Kernels.push(std::move(K));
  }
  Rep.setSimCounters(Total);

  stats::JsonValue Extra = stats::JsonValue::object();
  Extra.set("steps_per_kernel", stats::JsonValue(Steps));
  Extra.set("shape", stats::JsonValue(Paper ? "paper" : "test"));
  Extra.set("kernels", std::move(Kernels));
  Rep.setExtra(std::move(Extra));
  return Rep;
}

} // namespace

int main(int argc, char **argv) {
  std::string JsonPath;
  unsigned Steps = stepBudget(384);
  bool Paper = false;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--json" && I + 1 < argc)
      JsonPath = argv[++I];
    else if (Arg == "--steps" && I + 1 < argc)
      Steps = static_cast<unsigned>(std::atoi(argv[++I]));
    else if (Arg == "--paper")
      Paper = true;
    else {
      std::fprintf(stderr,
                   "usage: %s [--json PATH] [--steps N] [--paper]\n",
                   argv[0]);
      return 2;
    }
  }

  std::vector<KernelReport> Reports;
  for (WorkloadKind Kind :
       {WorkloadKind::MmLeakyRelu, WorkloadKind::FlashAttention}) {
    KernelReport R = benchKernel(Kind, Steps, Paper);
    std::printf("%-16s %6u steps in %7.3f s  ->  %9.1f steps/s  "
                "(cache hit %.1f%%)\n",
                R.Name.c_str(), R.Steps, R.Seconds, R.StepsPerSec,
                100.0 * R.CacheHitRate);
    std::printf("  phases/s: mask %.0f (fresh %.0f)  hash %.0f (fresh %.0f)"
                "  embed %.0f  decode %.0f  sim %.0f\n",
                R.Phases.MaskCached, R.Phases.MaskFresh, R.Phases.HashKey,
                R.Phases.HashFresh, R.Phases.Embed, R.Phases.Decode,
                R.Phases.SimTimed);
    Reports.push_back(std::move(R));
  }

  stats::BenchReport Report = buildReport(Reports, Steps, Paper);
  return bench::emitReport(Report, JsonPath) ? 0 : 1;
}

//===- bench/bench_fig12_training_stats.cpp - reproduces paper Figure 12 -----===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Regenerates Figure 12: the approximate KL divergence and the policy
// entropy over training steps. Both decrease as the policy converges,
// "indicating the policy network of the RL agent gradually converges,
// and thus each update round is less and less diverted" (§5.5).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "support/StringUtils.h"
#include "support/Table.h"
#include "triton/Autotuner.h"

#include <iostream>

using namespace cuasmrl;
using namespace cuasmrl::bench;
using namespace cuasmrl::kernels;

int main() {
  unsigned Steps = stepsBudget(2560);
  std::cout << "== Figure 12: approximate KL divergence and policy "
               "entropy over training ==\n("
            << Steps << " steps on fused GEMM+LeakyReLU)\n\n";

  gpusim::Gpu Device;
  Rng DataRng(3);
  WorkloadShape Shape = paperShape(WorkloadKind::MmLeakyRelu);
  triton::Autotuner Tuner;
  triton::AutotuneResult Tuned =
      Tuner.tune(Device, WorkloadKind::MmLeakyRelu, Shape, DataRng);
  BuiltKernel K = buildKernel(Device, WorkloadKind::MmLeakyRelu, Shape,
                              Tuned.Best, ScheduleStyle::TritonO3, DataRng);

  TrainOutcome RL = trainOnKernel(Device, K, Steps, /*Seed=*/5);

  Table Out({"step", "approx KL", "policy entropy", "episodic return"});
  for (size_t I = 0; I < RL.Series.size();
       I += std::max<size_t>(1, RL.Series.size() / 12)) {
    const rl::UpdateStats &U = RL.Series[I];
    Out.addRow({std::to_string(U.StepsDone), formatDouble(U.ApproxKl, 5),
                formatDouble(U.Entropy, 3),
                formatDouble(U.MeanEpisodicReturn, 3)});
  }
  Out.print(std::cout);

  // Trend check: average of the last quarter vs the first quarter.
  auto Avg = [&](auto Getter, size_t From, size_t To) {
    double Sum = 0;
    for (size_t I = From; I < To; ++I)
      Sum += Getter(RL.Series[I]);
    return Sum / std::max<size_t>(1, To - From);
  };
  size_t N = RL.Series.size();
  double KlEarly = Avg([](const rl::UpdateStats &U) { return U.ApproxKl; },
                       0, N / 4);
  double KlLate = Avg([](const rl::UpdateStats &U) { return U.ApproxKl; },
                      3 * N / 4, N);
  double EntEarly = Avg([](const rl::UpdateStats &U) { return U.Entropy; },
                        0, N / 4);
  double EntLate = Avg([](const rl::UpdateStats &U) { return U.Entropy; },
                       3 * N / 4, N);
  std::cout << "\napprox KL:      " << formatDouble(KlEarly, 5) << " -> "
            << formatDouble(KlLate, 5)
            << (KlLate < KlEarly ? "  (decreasing)" : "  (NOT decreasing)")
            << "\npolicy entropy: " << formatDouble(EntEarly, 3) << " -> "
            << formatDouble(EntLate, 3)
            << (EntLate < EntEarly ? "  (decreasing)" : "  (NOT decreasing)")
            << "\n\npaper: both metrics decrease over training steps.\n";
  return 0;
}

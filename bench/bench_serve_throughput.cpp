//===- bench/bench_serve_throughput.cpp - optimization-service throughput ----===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Request throughput of the §4.2 optimization service on a mixed
/// stream — deploy-cache lookup hits, single-flight duplicates, and
/// full optimize jobs — comparing a serial service (1 worker) against
/// the worker pool at 4. Both runs pre-populate their own deploy
/// cache with the same seed requests, then admit the identical stream
/// under StartPaused, so the admission pattern (hit / attach /
/// enqueue) is fixed and the determinism contract requires
/// bit-identical responses — the bench verifies this, making the
/// comparison throughput on the same work.
///
/// The speedup comes from optimize-job parallelism (lookup hits are
/// ~free in both runs), so the >= 2x target is only enforced when the
/// host exposes >= 4 hardware threads and the run is not in
/// CUASMRL_FAST smoke mode.
///
/// A third run replays a *faulty* mixed stream over a fake clock and a
/// seeded fault injector — a store failure retried to success, a
/// transient job error, a thrown job, a slow job pushed past its
/// deadline, and a near-miss shape served degraded — and emits the
/// timeout / degraded / error / retry counters as faulty_count_*
/// metrics. Those counts are schedule-determined, so the perf gate
/// (tools/bench_compare.py) holds them to an exact match rather than a
/// ratio threshold.
///
/// Emits a machine-readable JSON report (see tools/run_benchmarks.py):
///
///   bench_serve_throughput [--json PATH] [--workers N]
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "serve/OptimizationService.h"
#include "stats/SnapshotLogger.h"
#include "support/Clock.h"
#include "support/FaultInjector.h"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

using namespace cuasmrl;
using namespace cuasmrl::kernels;
using namespace cuasmrl::serve;

namespace {

constexpr uint64_t kSeed = 11;

core::OptimizeConfig jobConfig() {
  core::OptimizeConfig C;
  C.Ppo.TotalSteps = bench::fastMode() ? 32 : 128;
  C.Ppo.RolloutLen = 16;
  C.Ppo.MiniBatches = 2;
  C.Ppo.Epochs = 2;
  C.Ppo.Channels = 4;
  C.Ppo.Hidden = 16;
  C.Game.EpisodeLength = 8;
  C.Game.Measure.WarmupIters = 1;
  C.Game.Measure.RepeatIters = 1;
  C.Game.Measure.NoiseStddev = 0.001;
  C.AutotuneMeasure.WarmupIters = 1;
  C.AutotuneMeasure.RepeatIters = bench::fastMode() ? 2 : 3;
  C.ProbTestRounds = 1;
  return C;
}

OptimizeRequest request(WorkloadKind Kind, unsigned ScaleRows = 1) {
  OptimizeRequest R;
  R.Kind = Kind;
  R.Shape = testShape(Kind);
  R.Shape.Rows *= ScaleRows;
  return R;
}

/// The seed set: persisted before the timed phase so these keys
/// resolve as pure lookups.
std::vector<OptimizeRequest> seedRequests() {
  return {request(WorkloadKind::Softmax, 1), request(WorkloadKind::Softmax, 2),
          request(WorkloadKind::RmsNorm, 1), request(WorkloadKind::RmsNorm, 2)};
}

/// The timed mixed stream: every seed key (lookup hit), a set of cold
/// keys (optimize jobs), and a duplicate of every cold key
/// (single-flight attach).
std::vector<OptimizeRequest> mixedStream() {
  std::vector<OptimizeRequest> Stream = seedRequests();
  std::vector<OptimizeRequest> Cold = {
      request(WorkloadKind::Softmax, 4), request(WorkloadKind::Softmax, 8),
      request(WorkloadKind::RmsNorm, 4), request(WorkloadKind::RmsNorm, 8),
      request(WorkloadKind::MmLeakyRelu), request(WorkloadKind::FusedFF)};
  for (const OptimizeRequest &R : Cold) {
    Stream.push_back(R);
    Stream.push_back(R); // Duplicate: must merge, not re-optimize.
  }
  return Stream;
}

struct Outcome {
  double Millis = 0.0;
  double RequestsPerSec = 0.0;
  std::vector<ResponsePtr> Responses;
  std::vector<Admission> Admissions;
  ServiceStats Stats;
};

Outcome runStream(const gpusim::Gpu &Device, unsigned Workers,
                  const std::string &DeployDir,
                  const std::string &SnapshotPath = std::string()) {
  std::filesystem::remove_all(DeployDir);

  ServiceConfig Base;
  Base.Seed = kSeed;
  Base.DeployDir = DeployDir;
  Base.Defaults = jobConfig();

  {
    // Seed phase (untimed): populate the deploy cache.
    ServiceConfig SC = Base;
    SC.Workers = Workers;
    OptimizationService Seeder(Device, SC);
    for (const OptimizeRequest &R : seedRequests())
      Seeder.submit(R);
    Seeder.drain();
  }

  // Timed phase: admit the whole stream while paused so the
  // hit/attach/enqueue pattern is identical for every worker count,
  // then release the workers.
  ServiceConfig SC = Base;
  SC.Workers = Workers;
  SC.StartPaused = true;
  OptimizationService Service(Device, SC);
  std::vector<OptimizeRequest> Stream = mixedStream();

  // Live trajectory of the running service (stats sampled while the
  // workers churn), appended as JSONL when a path was requested.
  std::unique_ptr<stats::StatsSnapshotLogger> Logger;
  if (!SnapshotPath.empty()) {
    stats::StatsSnapshotLogger::Config LC;
    LC.Interval = std::chrono::milliseconds(25);
    LC.Path = SnapshotPath;
    Logger = std::make_unique<stats::StatsSnapshotLogger>(
        [&Service] { return stats::serviceStatsToJson(Service.stats()); },
        LC);
    if (!Logger->start())
      std::fprintf(stderr, "warning: cannot open snapshot log %s\n",
                   SnapshotPath.c_str());
  }

  auto Start = std::chrono::steady_clock::now();
  Outcome Out;
  std::vector<Ticket> Tickets;
  for (const OptimizeRequest &R : Stream)
    Tickets.push_back(Service.submit(R));
  Service.start();
  Service.drain();
  auto End = std::chrono::steady_clock::now();
  if (Logger)
    Logger->stop();

  Out.Millis = std::chrono::duration<double, std::milli>(End - Start).count();
  Out.RequestsPerSec = 1000.0 * Stream.size() / std::max(0.001, Out.Millis);
  for (Ticket &T : Tickets) {
    Out.Admissions.push_back(T.How);
    Out.Responses.push_back(T.Response.get());
  }
  Out.Stats = Service.stats();
  Service.shutdown();
  std::filesystem::remove_all(DeployDir);
  return Out;
}

/// The hardened-path scenario: a known fault schedule over a fake
/// clock (injected slowness and backoff sleeps cost no wall time), so
/// every counter below is determined by the schedule, not the host.
struct FaultyOutcome {
  double Millis = 0.0;
  uint64_t Timeouts = 0, Degraded = 0, Errors = 0;
  uint64_t JobRetries = 0, StoreRetries = 0;
  bool AsExpected = false;
};

FaultyOutcome runFaultyStream(const gpusim::Gpu &Device, unsigned Workers,
                              const std::string &DeployDir) {
  std::filesystem::remove_all(DeployDir);
  support::FakeClock Clock;
  support::FaultInjector Faults(kSeed);

  ServiceConfig SC;
  SC.Seed = kSeed;
  SC.DeployDir = DeployDir;
  SC.Defaults = jobConfig();
  SC.Workers = Workers;
  SC.ClockSrc = &Clock;
  SC.Faults = &Faults;
  SC.Retry.BaseDelay = std::chrono::milliseconds(1);
  OptimizationService Service(Device, SC);
  auto Key = [&](const OptimizeRequest &R) {
    return OptimizationService::requestKey(R, SC.Defaults);
  };

  // Deploy the shape the near-miss request will degrade onto.
  OptimizeRequest Seed = request(WorkloadKind::Softmax, 1);
  Service.submit(Seed);
  Service.drain();

  OptimizeRequest NearR = request(WorkloadKind::Softmax, 2);
  OptimizeRequest StoreR = request(WorkloadKind::RmsNorm, 1);
  StoreR.AllowDegraded = false;
  OptimizeRequest TransR = request(WorkloadKind::RmsNorm, 2);
  TransR.AllowDegraded = false;
  OptimizeRequest ThrowR = request(WorkloadKind::MmLeakyRelu);
  ThrowR.AllowDegraded = false;
  OptimizeRequest SlowR = request(WorkloadKind::FusedFF);
  SlowR.AllowDegraded = false;
  SlowR.Timeout = std::chrono::milliseconds(50);

  Faults.plan("cache-store-fail:" + Key(StoreR), {1, 1});
  Faults.plan("job-transient:" + Key(TransR), {1, 0});
  Faults.plan("job-throw:" + Key(ThrowR), {1});
  Faults.planDelay("job-slow:" + Key(SlowR), {100});

  auto Start = std::chrono::steady_clock::now();
  Ticket TN = Service.submit(NearR);
  Ticket TS = Service.submit(StoreR);
  Ticket TR = Service.submit(TransR);
  Ticket TT = Service.submit(ThrowR);
  Ticket TL = Service.submit(SlowR);
  Service.drain();
  auto End = std::chrono::steady_clock::now();

  FaultyOutcome Out;
  Out.Millis = std::chrono::duration<double, std::milli>(End - Start).count();
  ServiceStats S = Service.stats();
  Out.Timeouts = S.DeadlineExceeded;
  Out.Degraded = S.DegradedHits;
  Out.Errors = S.Failed;
  Out.JobRetries = S.JobRetries;
  Out.StoreRetries = S.StoreRetries;
  Out.AsExpected =
      TN.Response.get()->St == OptimizeResponse::Status::Degraded &&
      TS.Response.get()->St == OptimizeResponse::Status::Optimized &&
      TS.Response.get()->Persisted &&
      TR.Response.get()->St == OptimizeResponse::Status::Optimized &&
      TT.Response.get()->St == OptimizeResponse::Status::Failed &&
      TL.Response.get()->St == OptimizeResponse::Status::DeadlineExceeded &&
      Out.Timeouts == 1 && Out.Degraded == 1 && Out.Errors == 1 &&
      Out.JobRetries == 1 && Out.StoreRetries == 2;
  Service.shutdown();
  std::filesystem::remove_all(DeployDir);
  return Out;
}

bool identicalOutcomes(const Outcome &A, const Outcome &B) {
  if (A.Responses.size() != B.Responses.size())
    return false;
  for (size_t I = 0; I < A.Responses.size(); ++I) {
    const OptimizeResponse &RA = *A.Responses[I];
    const OptimizeResponse &RB = *B.Responses[I];
    if (A.Admissions[I] != B.Admissions[I] || RA.St != RB.St ||
        RA.Key != RB.Key)
      return false;
    if (RA.Binary.serialize() != RB.Binary.serialize())
      return false;
    if (RA.St == OptimizeResponse::Status::Optimized &&
        (RA.Result.OptimizedUs != RB.Result.OptimizedUs ||
         RA.Result.TritonUs != RB.Result.TritonUs ||
         RA.Result.OptimizedProg.str() != RB.Result.OptimizedProg.str()))
      return false;
  }
  return true;
}

stats::BenchReport buildReport(const Outcome &Serial, const Outcome &Parallel,
                               const FaultyOutcome &Faulty, unsigned Workers,
                               bool Identical) {
  stats::BenchReport Rep("serve_throughput", bench::reportMeta());
  Rep.addMetric("serial_ms", Serial.Millis, "ms", /*HigherIsBetter=*/false);
  Rep.addMetric("parallel_ms", Parallel.Millis, "ms",
                /*HigherIsBetter=*/false);
  Rep.addMetric("speedup", Serial.Millis / std::max(0.001, Parallel.Millis),
                "x");
  Rep.addMetric("serial_requests_per_sec", Serial.RequestsPerSec,
                "requests/s");
  Rep.addMetric("parallel_requests_per_sec", Parallel.RequestsPerSec,
                "requests/s");
  Rep.setServiceStats(Parallel.Stats);

  // The faulty-stream run: wall time gates as a ratio like any other
  // latency; the counters are schedule-exact, matching the
  // faulty_count_* built-in in tools/bench_compare.py.
  Rep.addMetric("faulty_ms", Faulty.Millis, "ms", /*HigherIsBetter=*/false);
  Rep.addMetric("faulty_count_timeouts", double(Faulty.Timeouts), "count");
  Rep.addMetric("faulty_count_degraded", double(Faulty.Degraded), "count");
  Rep.addMetric("faulty_count_errors", double(Faulty.Errors), "count");
  Rep.addMetric("faulty_count_job_retries", double(Faulty.JobRetries),
                "count");
  Rep.addMetric("faulty_count_store_retries", double(Faulty.StoreRetries),
                "count");

  stats::JsonValue Extra = stats::JsonValue::object();
  Extra.set("workers", stats::JsonValue(Workers));
  Extra.set("requests", stats::JsonValue(static_cast<uint64_t>(
                            Serial.Responses.size())));
  Extra.set("identical_results", stats::JsonValue(Identical));
  Extra.set("faulty_as_expected", stats::JsonValue(Faulty.AsExpected));
  Rep.setExtra(std::move(Extra));
  return Rep;
}

} // namespace

int main(int argc, char **argv) {
  std::string JsonPath;
  std::string SnapshotPath;
  unsigned Workers = 4;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--json" && I + 1 < argc)
      JsonPath = argv[++I];
    else if (Arg == "--snapshot-log" && I + 1 < argc)
      SnapshotPath = argv[++I];
    else if (Arg == "--workers" && I + 1 < argc)
      Workers = static_cast<unsigned>(std::atoi(argv[++I]));
    else {
      std::fprintf(stderr,
                   "usage: %s [--json PATH] [--snapshot-log PATH] "
                   "[--workers N]\n",
                   argv[0]);
      return 2;
    }
  }
  // Start each snapshot log from scratch (the logger appends).
  if (!SnapshotPath.empty())
    std::filesystem::remove(SnapshotPath);

  gpusim::Gpu Device;
  std::string DirBase =
      (std::filesystem::temp_directory_path() / "cuasmrl_bench_serve")
          .string();

  std::printf("bench_serve_throughput: %zu mixed requests, "
              "%u hardware threads\n\n",
              mixedStream().size(), std::thread::hardware_concurrency());

  Outcome Serial = runStream(Device, /*Workers=*/1, DirBase + "_serial");
  Outcome Parallel =
      runStream(Device, Workers, DirBase + "_parallel", SnapshotPath);
  bool Identical = identicalOutcomes(Serial, Parallel);
  double Speedup = Serial.Millis / std::max(0.001, Parallel.Millis);
  FaultyOutcome Faulty = runFaultyStream(Device, Workers, DirBase + "_faulty");

  std::printf("%-28s %10s %16s\n", "service", "wall ms", "requests/s");
  std::printf("%-28s %10.1f %16.1f\n", "serial (1 worker)", Serial.Millis,
              Serial.RequestsPerSec);
  std::printf("%-28s %10.1f %16.1f\n",
              ("parallel (" + std::to_string(Workers) + " workers)").c_str(),
              Parallel.Millis, Parallel.RequestsPerSec);
  std::printf("\nstream: %llu lookup hits, %llu merges, %llu optimize runs\n",
              static_cast<unsigned long long>(Parallel.Stats.LookupHits),
              static_cast<unsigned long long>(Parallel.Stats.Merged),
              static_cast<unsigned long long>(Parallel.Stats.OptimizeRuns));
  std::printf("request speedup: %.2fx\n", Speedup);
  std::printf("bit-identical responses: %s\n", Identical ? "yes" : "NO (BUG)");
  std::printf("\nfaulty stream (%.1f ms): %llu timeout, %llu degraded, "
              "%llu error, %llu job retries, %llu store retries — %s\n",
              Faulty.Millis,
              static_cast<unsigned long long>(Faulty.Timeouts),
              static_cast<unsigned long long>(Faulty.Degraded),
              static_cast<unsigned long long>(Faulty.Errors),
              static_cast<unsigned long long>(Faulty.JobRetries),
              static_cast<unsigned long long>(Faulty.StoreRetries),
              Faulty.AsExpected ? "matches the schedule"
                                : "DOES NOT MATCH (BUG)");

  stats::BenchReport Report = buildReport(Serial, Parallel, Faulty, Workers,
                                          Identical);
  if (!bench::emitReport(Report, JsonPath))
    return 1;

  // Determinism is enforced everywhere; the throughput target only
  // where the hardware can physically provide it.
  bool EnforceSpeedup =
      std::thread::hardware_concurrency() >= 4 && !bench::fastMode();
  bool Pass = Identical && Faulty.AsExpected &&
              (!EnforceSpeedup || Speedup >= 2.0);
  std::printf("\n%s: %.2fx %s 2x target at %u workers%s\n",
              Pass ? "PASS" : "FAIL", Speedup,
              Speedup >= 2.0 ? ">=" : "<", Workers,
              EnforceSpeedup ? ""
                             : " (target not enforced: <4 hardware threads "
                               "or smoke mode)");
  return Pass ? 0 : 1;
}

//===- bench/BenchCommon.h - Shared experiment-harness helpers ---------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the per-table/per-figure bench binaries. Budgets
/// honor two environment variables:
///   CUASMRL_STEPS  — override the RL step budget of training benches.
///   CUASMRL_FAST=1 — divide every budget by 8 (smoke-test mode).
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_BENCH_BENCHCOMMON_H
#define CUASMRL_BENCH_BENCHCOMMON_H

#include "core/GameEnvAdapter.h"
#include "core/Optimizer.h"
#include "env/AssemblyGame.h"
#include "rl/Ppo.h"
#include "stats/BenchReport.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>

namespace cuasmrl {
namespace bench {

inline bool fastMode() {
  const char *Fast = std::getenv("CUASMRL_FAST");
  return Fast && std::string(Fast) == "1";
}

/// Run provenance for this process: git sha from CUASMRL_GIT_SHA (set
/// by tools/run_benchmarks.py) or GITHUB_SHA, build type baked in by
/// the bench CMakeLists, current UTC time, host threads, smoke flag.
inline stats::RunMeta reportMeta() {
  stats::RunMeta M;
  if (const char *Sha = std::getenv("CUASMRL_GIT_SHA"))
    M.GitSha = Sha;
  else if (const char *Sha = std::getenv("GITHUB_SHA"))
    M.GitSha = Sha;
#ifdef CUASMRL_BUILD_TYPE
  if (CUASMRL_BUILD_TYPE[0] != '\0')
    M.Build = CUASMRL_BUILD_TYPE;
#endif
  M.Timestamp = stats::isoTimestampUtcNow();
  M.HardwareThreads = std::thread::hardware_concurrency();
  M.FastMode = fastMode();
  return M;
}

/// Prints \p Rep to stdout and, when \p Path is non-empty, writes it
/// there too. Returns false (after complaining on stderr) on IO error.
inline bool emitReport(const stats::BenchReport &Rep,
                       const std::string &Path) {
  std::string Text = Rep.serialize();
  std::fputs(Text.c_str(), stdout);
  if (Path.empty())
    return true;
  std::ofstream Out(Path);
  if (!Out) {
    std::fprintf(stderr, "cannot open %s\n", Path.c_str());
    return false;
  }
  Out << Text;
  return Out.good();
}

inline unsigned stepsBudget(unsigned Default) {
  if (const char *Env = std::getenv("CUASMRL_STEPS"))
    if (unsigned V = static_cast<unsigned>(std::atoi(Env)))
      Default = V;
  return fastMode() ? std::max(128u, Default / 8) : Default;
}

/// Reward-measurement protocol for training: one deterministic rep with
/// ~0.1% noise — the std of the paper's 100-rep averaged measurement.
inline env::GameConfig trainingGameConfig() {
  env::GameConfig G;
  G.Measure.WarmupIters = 1;
  G.Measure.RepeatIters = 1;
  G.Measure.NoiseStddev = 0.001;
  return G;
}

/// PPO defaults used by every training bench: the paper's algorithm and
/// shared-across-kernels hyperparameters, with the learning rate scaled
/// to the reduced step budget (the paper trains ~15k steps; benches run
/// a few thousand).
inline rl::PpoConfig benchPpoConfig(unsigned TotalSteps, uint64_t Seed = 1) {
  rl::PpoConfig C;
  C.TotalSteps = TotalSteps;
  C.RolloutLen = 64;
  C.Lr = 1e-3;
  C.Seed = Seed;
  return C;
}

/// Geometric mean of positive values.
inline double geomean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double LogSum = 0.0;
  for (double V : Values)
    LogSum += std::log(V);
  return std::exp(LogSum / Values.size());
}

/// Trains PPO on one kernel's assembly game and (optionally) replays the
/// converged policy greedily for the §5.7 move trace.
struct TrainOutcome {
  double TritonUs = 0.0;
  double BestUs = 0.0;
  sass::Program BestProg;
  std::vector<rl::UpdateStats> Series;
  std::vector<double> EpisodeReturns;
  std::vector<env::AppliedAction> GreedyTrace;

  double speedup() const { return BestUs > 0 ? TritonUs / BestUs : 1.0; }
};

inline TrainOutcome trainOnKernel(gpusim::Gpu &Device,
                                  const kernels::BuiltKernel &Kernel,
                                  unsigned TotalSteps, uint64_t Seed = 1,
                                  bool WantTrace = false) {
  env::AssemblyGame Game(Device, Kernel, trainingGameConfig());
  core::GameEnvAdapter Env(Game);
  rl::PpoTrainer Trainer({&Env}, benchPpoConfig(TotalSteps, Seed));
  TrainOutcome Out;
  Out.Series = Trainer.train();
  Out.EpisodeReturns = Trainer.episodicReturns();
  if (WantTrace) {
    Trainer.playGreedy(Env, 32);
    Out.GreedyTrace = Game.trace();
  }
  Out.TritonUs = Game.initialTimeUs();
  Out.BestUs = Game.bestTimeUs();
  Out.BestProg = Game.best();
  return Out;
}

} // namespace bench
} // namespace cuasmrl

#endif // CUASMRL_BENCH_BENCHCOMMON_H

//===- bench/bench_autotuner_gap.cpp - §3.1 configuration-gap evidence -------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Quantifies why the hierarchical search runs the autotuner first
// (§3.1): "kernel configurations such as the tile sizes can lead to up
// to 2x throughput difference and completely different SASS
// instructions". Sweeps the configuration grid per kernel and prints
// the worst/best ratio plus the SASS-size spread.
//
//===----------------------------------------------------------------------===//

#include "kernels/Builder.h"
#include "kernels/Generators.h"
#include "support/StringUtils.h"
#include "support/Table.h"
#include "triton/Autotuner.h"

#include <iostream>

using namespace cuasmrl;
using namespace cuasmrl::kernels;

int main() {
  std::cout << "== §3.1: kernel-configuration throughput gap ==\n\n";

  Table Out({"kernel", "configs", "best us", "worst us", "gap",
             "instr count range"});
  for (WorkloadKind Kind : allWorkloads()) {
    gpusim::Gpu Device;
    Rng DataRng(3);
    WorkloadShape Shape = paperShape(Kind);
    double Best = 1e30, Worst = 0;
    size_t MinInstr = SIZE_MAX, MaxInstr = 0;
    unsigned Count = 0;
    for (const TileConfig &Config : candidateConfigs(Kind)) {
      if (!configFits(Kind, Shape, Config))
        continue;
      BuiltKernel K = buildKernel(Device, Kind, Shape, Config,
                                  ScheduleStyle::TritonO3, DataRng);
      gpusim::MeasureConfig M;
      M.WarmupIters = 1;
      M.RepeatIters = 1;
      M.NoiseStddev = 0.0;
      M.MaxBlocks = Device.residentBlocks(K.Launch);
      gpusim::Measurement R = measureKernel(Device, K.Prog, K.Launch, M);
      if (!R.Valid)
        continue;
      Best = std::min(Best, R.MeanUs);
      Worst = std::max(Worst, R.MeanUs);
      MinInstr = std::min(MinInstr, K.Prog.instrCount());
      MaxInstr = std::max(MaxInstr, K.Prog.instrCount());
      ++Count;
    }
    Out.addRow({workloadName(Kind), std::to_string(Count),
                formatDouble(Best, 2), formatDouble(Worst, 2),
                formatDouble(Worst / Best, 2) + "x",
                std::to_string(MinInstr) + ".." + std::to_string(MaxInstr)});
  }
  Out.print(std::cout);
  std::cout << "\npaper: configurations are worth up to ~2x and change "
               "the SASS entirely,\nwhich is why the SASS-level game only "
               "starts after the autotuner.\n";
  return 0;
}

//===- bench/bench_table1_stall_counts.cpp - reproduces paper Table 1 --------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Regenerates Table 1: fixed-latency instructions and their stall counts
// on the (simulated) A100, measured with the dependency-based
// microbenchmark of §4.3. Prints the paper's rows first, then the
// additional opcodes the automatic table builder covers.
//
//===----------------------------------------------------------------------===//

#include "analysis/MicroBench.h"
#include "sass/Opcode.h"
#include "support/Table.h"

#include <algorithm>
#include <iostream>
#include <map>

using namespace cuasmrl;
using namespace cuasmrl::analysis;

int main() {
  std::cout << "== Table 1: fixed-latency instructions and their stall "
               "counts (A100 sim) ==\n\n";

  // The paper's table groups instructions by cycle count.
  const char *PaperKeys[] = {"IADD3", "IMAD.IADD", "IADD3.X", "MOV",
                             "IABS",  "IMAD",      "FADD",    "HADD2",
                             "IMNMX", "SEL",       "LEA",     "IMAD.WIDE",
                             "IMAD.WIDE.U32"};

  std::map<unsigned, std::vector<std::string>> ByCycles;
  Table Detail({"instruction", "measured stall", "ground truth", "match"});
  bool AllMatch = true;
  for (const char *Key : PaperKeys) {
    std::optional<unsigned> Measured = dependencyStallCount(Key);
    std::optional<unsigned> Truth = sass::groundTruthLatency(Key);
    bool Match = Measured && Truth && *Measured == *Truth;
    AllMatch = AllMatch && Match;
    if (Measured)
      ByCycles[*Measured].push_back(Key);
    Detail.addRow({Key, Measured ? std::to_string(*Measured) : "-",
                   Truth ? std::to_string(*Truth) : "-",
                   Match ? "yes" : "NO"});
  }
  Detail.print(std::cout);

  std::cout << "\npaper-format rows:\n";
  Table PaperFmt({"Instructions", "Stall counts (cycles)"});
  for (const auto &[Cycles, Keys] : ByCycles) {
    std::string Joined;
    for (size_t I = 0; I < Keys.size(); ++I)
      Joined += (I ? ", " : "") + Keys[I];
    PaperFmt.addRow({Joined, std::to_string(Cycles)});
  }
  PaperFmt.print(std::cout);

  std::cout << "\nautomatically extended table (§3.2 future work, realized):\n";
  Table Extra({"instruction", "measured stall"});
  for (const std::string &Key : microbenchableKeys()) {
    if (std::find_if(std::begin(PaperKeys), std::end(PaperKeys),
                     [&](const char *P) { return Key == P; }) !=
        std::end(PaperKeys))
      continue;
    if (std::optional<unsigned> Measured = dependencyStallCount(Key))
      Extra.addRow({Key, std::to_string(*Measured)});
  }
  Extra.print(std::cout);

  std::cout << "\nresult: " << (AllMatch ? "all" : "NOT all")
            << " paper rows recovered exactly by the dependency-based "
               "methodology\n";
  return AllMatch ? 0 : 1;
}

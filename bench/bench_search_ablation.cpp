//===- bench/bench_search_ablation.cpp - §7 search-algorithm comparison ------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// The paper's §7 discussion: "it is also possible to apply other search
// algorithms, such as evolutionary search ... however it may converge
// to local minima". Gives every searcher the same environment-step
// budget on fused GEMM+LeakyReLU and compares the best schedule found.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "search/Search.h"
#include "support/StringUtils.h"
#include "support/Table.h"
#include "triton/Autotuner.h"

#include <iostream>

using namespace cuasmrl;
using namespace cuasmrl::bench;
using namespace cuasmrl::kernels;

int main() {
  unsigned Budget = stepsBudget(2560);
  std::cout << "== §7: PPO vs training-free search at equal step budgets "
               "(" << Budget << " env steps) ==\n\n";

  gpusim::Gpu Device;
  Rng DataRng(3);
  WorkloadShape Shape = paperShape(WorkloadKind::MmLeakyRelu);
  triton::Autotuner Tuner;
  triton::AutotuneResult Tuned =
      Tuner.tune(Device, WorkloadKind::MmLeakyRelu, Shape, DataRng);
  BuiltKernel K = buildKernel(Device, WorkloadKind::MmLeakyRelu, Shape,
                              Tuned.Best, ScheduleStyle::TritonO3, DataRng);

  Table Out({"algorithm", "best us", "speedup", "note"});

  // PPO (the paper's choice).
  TrainOutcome RL = trainOnKernel(Device, K, Budget, /*Seed=*/1);
  Out.addRow({"PPO (CuAsmRL)", formatDouble(RL.BestUs, 2),
              formatDouble(RL.speedup(), 3) + "x",
              "learned policy, long-horizon credit"});

  // Training-free baselines on identical games.
  {
    env::GameConfig G = trainingGameConfig();
    G.EpisodeLength = 32;
    env::AssemblyGame Game(Device, K, G);
    Rng R(11);
    search::SearchResult S = search::greedySearch(Game, Budget, R);
    Out.addRow({"greedy hill-climb", formatDouble(S.BestTimeUs, 2),
                formatDouble(S.speedup(), 3) + "x",
                "stalls on zero-gain plateaus"});
  }
  {
    env::GameConfig G = trainingGameConfig();
    G.EpisodeLength = 32;
    env::AssemblyGame Game(Device, K, G);
    Rng R(12);
    search::SearchResult S = search::randomSearch(Game, Budget, R);
    Out.addRow({"random walk", formatDouble(S.BestTimeUs, 2),
                formatDouble(S.speedup(), 3) + "x", "no credit assignment"});
  }
  {
    env::GameConfig G = trainingGameConfig();
    G.EpisodeLength = 64;
    env::AssemblyGame Game(Device, K, G);
    Rng R(13);
    search::SearchResult S = search::evolutionarySearch(Game, Budget, R);
    Out.addRow({"evolutionary (mu+lambda)", formatDouble(S.BestTimeUs, 2),
                formatDouble(S.speedup(), 3) + "x",
                "no training, local minima (paper §7)"});
  }

  std::cout << "baseline (Triton -O3): " << formatDouble(RL.TritonUs, 2)
            << " us\n\n";
  Out.print(std::cout);
  std::cout << "\npaper: RL is chosen for state-of-the-art performance "
               "and potential generalization;\nevolutionary search needs "
               "no training but converges to local minima.\n";
  return 0;
}

//===- bench/bench_fig9_optimization_moves.cpp - reproduces paper Figure 9 ---===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Regenerates Figure 9 and the §5.7.1 analysis: the agent learns to
// schedule the HMMA instruction *before* the yield-flagged LDGSTS that
// sat inside a `.reuse` operand pair, and the `.reuse` ablation shows
// the asymmetry the paper reports —
//   - removing `.reuse` from the ORIGINAL schedule: no degradation
//     (the warp switch already invalidated the operand cache);
//   - removing `.reuse` from the OPTIMIZED schedule: the gain is lost
//     (the back-to-back pair really uses the cache).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "support/StringUtils.h"
#include "triton/Autotuner.h"

#include <iostream>

using namespace cuasmrl;
using namespace cuasmrl::bench;
using namespace cuasmrl::kernels;

namespace {

double measureUs(gpusim::Gpu &Device, const sass::Program &Prog,
                 const gpusim::KernelLaunch &Launch) {
  gpusim::MeasureConfig M;
  M.WarmupIters = 1;
  M.RepeatIters = 2;
  M.NoiseStddev = 0.0;
  M.MaxBlocks = Device.residentBlocks(Launch);
  return measureKernel(Device, Prog, Launch, M).MeanUs;
}

sass::Program stripReuse(const sass::Program &Prog) {
  sass::Program Out = Prog;
  for (size_t I = 0; I < Out.size(); ++I)
    if (Out.stmt(I).isInstr())
      for (sass::Operand &Op : Out.stmt(I).instr().operands())
        Op.setReuse(false);
  return Out;
}

} // namespace

int main() {
  unsigned Steps = stepsBudget(2560);
  std::cout << "== Figure 9 / §5.7.1: automatically discovered "
               "optimization moves (fused GEMM+LeakyReLU) ==\n(RL budget "
            << Steps << " steps)\n\n";

  gpusim::Gpu Device;
  Rng DataRng(3);
  WorkloadShape Shape = paperShape(WorkloadKind::MmLeakyRelu);
  triton::Autotuner Tuner;
  triton::AutotuneResult Tuned =
      Tuner.tune(Device, WorkloadKind::MmLeakyRelu, Shape, DataRng);
  BuiltKernel K = buildKernel(Device, WorkloadKind::MmLeakyRelu, Shape,
                              Tuned.Best, ScheduleStyle::TritonO3, DataRng);

  TrainOutcome RL = trainOnKernel(Device, K, Steps, /*Seed=*/1,
                                  /*WantTrace=*/true);
  std::cout << "triton " << formatDouble(RL.TritonUs, 2) << "us -> cuasmrl "
            << formatDouble(RL.BestUs, 2) << "us ("
            << formatDouble(RL.speedup(), 3) << "x)\n\n";

  // The inference process is seeded and deterministic (§5.7); replay the
  // learned moves and look for the Figure 9 signature: an HMMA/LDGSTS
  // reorder that reunites a .reuse pair.
  std::cout << "greedy inference trace (first moves):\n";
  bool SawFig9 = false;
  size_t Shown = 0;
  for (const env::AppliedAction &A : RL.GreedyTrace) {
    bool MovedLdgsts = A.MovedText.find("LDGSTS") != std::string::npos;
    bool PastHmma = A.OtherText.find("HMMA") != std::string::npos;
    bool IsFig9 = MovedLdgsts && PastHmma;
    SawFig9 = SawFig9 || IsFig9;
    if (Shown < 14) {
      std::cout << "  " << (A.Up ? "UP  " : "DOWN") << " "
                << A.MovedText.substr(0, 46) << "  past  "
                << A.OtherText.substr(0, 34)
                << (IsFig9 ? "   <-- Figure 9 move" : "") << "\n";
      ++Shown;
    }
  }
  // Structural check on the winning schedule: the TritonO3 artifact is a
  // yield-flagged LDGSTS directly below an HMMA (inside the reuse pair);
  // the optimized schedule must have moved it out.
  auto PairSplit = [](const sass::Program &P) {
    for (size_t I = 1; I + 1 < P.size(); ++I) {
      if (!P.stmt(I).isInstr() || !P.stmt(I - 1).isInstr())
        continue;
      const sass::Instruction &Cur = P.stmt(I).instr();
      if (Cur.opcode() == sass::Opcode::LDGSTS && Cur.ctrl().yield() &&
          P.stmt(I - 1).instr().opcode() == sass::Opcode::HMMA &&
          P.stmt(I + 1).isInstr() &&
          P.stmt(I + 1).instr().opcode() == sass::Opcode::HMMA)
        return true;
    }
    return false;
  };
  bool SplitBefore = PairSplit(K.Prog);
  bool SplitAfter = PairSplit(RL.BestProg);
  std::cout << "\nreuse pair split by the yield-flagged LDGSTS: before="
            << (SplitBefore ? "yes" : "no")
            << "  after=" << (SplitAfter ? "yes" : "no")
            << (SplitBefore && !SplitAfter
                    ? "   <-- Figure 9 reorder applied"
                    : "")
            << "\n";
  std::cout << "HMMA/LDGSTS swap visible in the greedy trace: "
            << (SawFig9 ? "YES" : "no") << "\n\n";

  // The .reuse ablation.
  double Orig = measureUs(Device, K.Prog, K.Launch);
  double OrigStripped = measureUs(Device, stripReuse(K.Prog), K.Launch);
  double Opt = measureUs(Device, RL.BestProg, K.Launch);
  double OptStripped = measureUs(Device, stripReuse(RL.BestProg), K.Launch);

  std::cout << ".reuse flag ablation (paper §5.7.1):\n";
  std::cout << "  original schedule:   " << formatDouble(Orig, 2)
            << "us -> without .reuse " << formatDouble(OrigStripped, 2)
            << "us  (" << formatDouble(OrigStripped / Orig, 4)
            << "x; ~no degradation expected)\n";
  std::cout << "  optimized schedule:  " << formatDouble(Opt, 2)
            << "us -> without .reuse " << formatDouble(OptStripped, 2)
            << "us  (" << formatDouble(OptStripped / Opt, 4)
            << "x; gain partially lost)\n";
  std::cout << "\npaper: removing the flag from the original schedule "
               "costs nothing (the warp\nswitch at the LDGSTS already "
               "invalidated the operand cache); removing it\nfrom the "
               "optimized schedule loses the gain.\n";
  return 0;
}

//===- bench/bench_fig13_predicated_lds.cpp - reproduces paper Figure 13 -----===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Regenerates Figure 13 and the §5.7.2 observations on batch matrix
// multiplication: the agent learns to schedule an LDGSTS *earlier than*
// a predicated-off (@!PT) LDS, and after exhausting the useful moves it
// "lingers" — repeatedly moving an instruction up and then down until
// the episode ends.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "support/StringUtils.h"
#include "triton/Autotuner.h"

#include <iostream>

using namespace cuasmrl;
using namespace cuasmrl::bench;
using namespace cuasmrl::kernels;

int main() {
  unsigned Steps = stepsBudget(2560);
  std::cout << "== Figure 13 / §5.7.2: LDGSTS hoisted above a "
               "predicated-off LDS (bmm) ==\n(RL budget "
            << Steps << " steps)\n\n";

  gpusim::Gpu Device;
  Rng DataRng(3);
  WorkloadShape Shape = paperShape(WorkloadKind::Bmm);
  triton::Autotuner Tuner;
  triton::AutotuneResult Tuned =
      Tuner.tune(Device, WorkloadKind::Bmm, Shape, DataRng);
  BuiltKernel K = buildKernel(Device, WorkloadKind::Bmm, Shape, Tuned.Best,
                              ScheduleStyle::TritonO3, DataRng);

  // Show the artifact in the -O3 schedule (Figure 13 "before").
  std::cout << "schedule before (around the dead LDS):\n";
  for (size_t I = 0; I + 1 < K.Prog.size(); ++I) {
    if (!K.Prog.stmt(I).isInstr())
      continue;
    if (K.Prog.stmt(I).instr().isAlwaysFalseGuard()) {
      for (size_t J = I > 1 ? I - 2 : 0; J <= I + 2 && J < K.Prog.size();
           ++J)
        if (K.Prog.stmt(J).isInstr())
          std::cout << "  " << K.Prog.stmt(J).instr().str().substr(0, 64)
                    << (J == I ? "   <-- @!PT (never executes)" : "")
                    << "\n";
      break;
    }
  }

  TrainOutcome RL = trainOnKernel(Device, K, Steps, /*Seed=*/1,
                                  /*WantTrace=*/true);
  std::cout << "\ntriton " << formatDouble(RL.TritonUs, 2)
            << "us -> cuasmrl " << formatDouble(RL.BestUs, 2) << "us ("
            << formatDouble(RL.speedup(), 3) << "x)\n\n";

  // Detect the Figure 13 move in the greedy trace.
  bool SawHoist = false;
  unsigned Lingering = 0;
  for (size_t I = 0; I < RL.GreedyTrace.size(); ++I) {
    const env::AppliedAction &A = RL.GreedyTrace[I];
    if (A.Up && A.MovedText.find("LDGSTS") != std::string::npos &&
        A.OtherText.find("@!PT LDS") != std::string::npos)
      SawHoist = true;
    // Lingering: an up immediately undone by a down of the same
    // instruction (or vice versa).
    if (I > 0 && RL.GreedyTrace[I - 1].MovedText == A.MovedText &&
        RL.GreedyTrace[I - 1].Up != A.Up)
      ++Lingering;
  }

  // Structural check: how many async copies sit *above* the dead LDS in
  // its loop body, before vs after optimization.
  auto CopiesAboveDeadLds = [](const sass::Program &P) {
    int Copies = 0;
    for (size_t I = 0; I < P.size(); ++I) {
      if (!P.stmt(I).isInstr())
        Copies = 0; // New region.
      else if (P.stmt(I).instr().opcode() == sass::Opcode::LDGSTS)
        ++Copies;
      else if (P.stmt(I).instr().isAlwaysFalseGuard())
        return Copies;
    }
    return -1;
  };
  int Before = CopiesAboveDeadLds(K.Prog);
  int After = CopiesAboveDeadLds(RL.BestProg);
  std::cout << "async copies above the dead LDS: before=" << Before
            << " after=" << After
            << (After > Before ? "   <-- Figure 13 hoist applied" : "")
            << "\n";
  std::cout << "LDGSTS-past-dead-LDS swap in the greedy trace: "
            << (SawHoist ? "YES" : "no") << "\n";
  std::cout << "lingering up/down oscillations at episode end: " << Lingering
            << "  (paper: the agent lingers after applying the useful "
               "moves)\n\n";

  // In the best schedule, the dead LDS must now sit below the copy it
  // used to delay.
  const sass::Program &Best = RL.BestProg;
  for (size_t I = 0; I + 1 < Best.size(); ++I) {
    if (!Best.stmt(I).isInstr() || !Best.stmt(I + 1).isInstr())
      continue;
    if (Best.stmt(I).instr().opcode() == sass::Opcode::LDGSTS &&
        Best.stmt(I + 1).instr().isAlwaysFalseGuard()) {
      std::cout << "schedule after (Figure 13 'after'):\n  "
                << Best.stmt(I).instr().str().substr(0, 64) << "\n  "
                << Best.stmt(I + 1).instr().str().substr(0, 64)
                << "   <-- dead LDS now below the copy\n";
      break;
    }
  }
  return 0;
}

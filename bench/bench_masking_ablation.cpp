//===- bench/bench_masking_ablation.cpp - §3.5 action-masking ablation -------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Quantifies what the §3.5 action masking buys: without it, random
// reorderings violate register/barrier/stall dependencies, the mutated
// schedules corrupt their outputs (caught by the oracle comparison) and
// episodes terminate early with penalties; with it, every mutated
// schedule stays semantically valid by construction.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "support/StringUtils.h"
#include "support/Table.h"
#include "triton/Autotuner.h"

#include <iostream>

using namespace cuasmrl;
using namespace cuasmrl::bench;
using namespace cuasmrl::kernels;

namespace {

/// Env adapter that counts invalid-schedule episodes.
class CountingAdapter : public rl::Env {
public:
  explicit CountingAdapter(env::AssemblyGame &Game) : Game(Game) {}
  std::vector<float> reset() override { return Game.reset(); }
  rl::EnvStep step(unsigned Action) override {
    env::AssemblyGame::StepResult R = Game.step(Action);
    if (R.Invalid)
      ++InvalidEpisodes;
    ++Steps;
    rl::EnvStep Out;
    Out.Obs = std::move(R.Observation);
    Out.Reward = R.Reward;
    Out.Done = R.Done;
    return Out;
  }
  std::vector<uint8_t> actionMask() override { return Game.actionMask(); }
  unsigned actionCount() const override { return Game.actionCount(); }
  size_t obsRows() const override { return Game.obsRows(); }
  size_t obsFeatures() const override { return Game.obsFeatures(); }

  unsigned InvalidEpisodes = 0;
  unsigned Steps = 0;

private:
  env::AssemblyGame &Game;
};

} // namespace

int main() {
  unsigned Budget = stepsBudget(768);
  std::cout << "== §3.5 ablation: action masking on vs off (" << Budget
            << " steps each) ==\n\n";

  gpusim::Gpu Device;
  Rng DataRng(3);
  WorkloadShape Shape = paperShape(WorkloadKind::MmLeakyRelu);
  triton::Autotuner Tuner;
  triton::AutotuneResult Tuned =
      Tuner.tune(Device, WorkloadKind::MmLeakyRelu, Shape, DataRng);
  BuiltKernel K = buildKernel(Device, WorkloadKind::MmLeakyRelu, Shape,
                              Tuned.Best, ScheduleStyle::TritonO3, DataRng);

  Table Out({"mode", "invalid episodes", "best us", "speedup"});
  for (bool Masked : {true, false}) {
    env::GameConfig G = trainingGameConfig();
    G.UseActionMasking = Masked;
    env::AssemblyGame Game(Device, K, G);
    CountingAdapter Env(Game);
    rl::PpoTrainer Trainer({&Env}, benchPpoConfig(Budget, /*Seed=*/2));
    Trainer.train();
    Out.addRow({Masked ? "masked (paper)" : "unmasked",
                std::to_string(Env.InvalidEpisodes),
                formatDouble(Game.bestTimeUs(), 2),
                formatDouble(Game.initialTimeUs() / Game.bestTimeUs(), 3) +
                    "x"});
  }
  Out.print(std::cout);
  std::cout << "\nmasked runs can never execute an invalid schedule; "
               "unmasked runs burn their\nbudget on corrupted schedules "
               "and penalties (the paper masks by construction).\n";
  return 0;
}

//===- bench/bench_autotune_sweep.cpp - autotune sweep throughput ------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Throughput of the parallel autotune sweep engine (§3.1 level 1):
/// the GEMM candidate grid swept serially (Workers = 1, the pre-engine
/// behavior) against the worker-pool sweep at 4 workers. Both runs use
/// the same base seed, so the engine's determinism contract requires
/// bit-identical results — the bench verifies this, making the
/// comparison throughput on the same work.
///
/// Unlike the rollout engine (which also profits from cache sharing on
/// one core), sweep candidates are pairwise distinct schedules: the
/// speedup is pure build/measure parallelism, so the >= 2x target is
/// only enforced when the host actually exposes >= 4 hardware threads
/// (and the run is not in CUASMRL_FAST smoke mode).
///
/// Emits a machine-readable JSON report (see tools/run_benchmarks.py):
///
///   bench_autotune_sweep [--json PATH] [--paper] [--workers N]
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "triton/Autotuner.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

using namespace cuasmrl;
using namespace cuasmrl::kernels;

namespace {

constexpr uint64_t kSeed = 7;

struct Outcome {
  double Millis = 0.0;
  double CandidatesPerSec = 0.0;
  std::vector<triton::AutotuneResult> Results;
};

Outcome runSweep(const gpusim::Gpu &Device,
                 const std::vector<triton::SweepRequest> &Requests,
                 unsigned Workers, const gpusim::MeasureConfig &Measure) {
  triton::AutotuneOptions O;
  O.Measure = Measure;
  O.Workers = Workers;
  O.BaseSeed = kSeed;
  triton::Autotuner Tuner(O);

  auto Start = std::chrono::steady_clock::now();
  Outcome Out;
  Out.Results = Tuner.sweepAll(Device, Requests);
  auto End = std::chrono::steady_clock::now();
  Out.Millis =
      std::chrono::duration<double, std::milli>(End - Start).count();
  size_t Candidates = 0;
  for (const triton::AutotuneResult &R : Out.Results)
    Candidates += R.Sweep.size();
  Out.CandidatesPerSec = 1000.0 * Candidates / std::max(0.001, Out.Millis);
  return Out;
}

bool identicalResults(const std::vector<triton::AutotuneResult> &A,
                      const std::vector<triton::AutotuneResult> &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I < A.size(); ++I) {
    if (!(A[I].Best == B[I].Best) || A[I].BestUs != B[I].BestUs ||
        A[I].Valid != B[I].Valid || A[I].Sweep.size() != B[I].Sweep.size())
      return false;
    for (size_t C = 0; C < A[I].Sweep.size(); ++C)
      if (A[I].Sweep[C].MeanUs != B[I].Sweep[C].MeanUs ||
          A[I].Sweep[C].Valid != B[I].Sweep[C].Valid)
        return false;
  }
  return true;
}

stats::BenchReport buildReport(const std::vector<triton::SweepRequest> &Reqs,
                               const Outcome &Serial, const Outcome &Parallel,
                               unsigned Workers, bool Identical, bool Paper) {
  stats::BenchReport Rep("autotune_sweep", bench::reportMeta());
  Rep.addMetric("serial_ms", Serial.Millis, "ms", /*HigherIsBetter=*/false);
  Rep.addMetric("parallel_ms", Parallel.Millis, "ms",
                /*HigherIsBetter=*/false);
  Rep.addMetric("speedup", Serial.Millis / std::max(0.001, Parallel.Millis),
                "x");
  Rep.addMetric("serial_candidates_per_sec", Serial.CandidatesPerSec,
                "candidates/s");
  Rep.addMetric("parallel_candidates_per_sec", Parallel.CandidatesPerSec,
                "candidates/s");

  stats::JsonValue Workloads = stats::JsonValue::array();
  for (size_t I = 0; I < Reqs.size(); ++I) {
    const triton::AutotuneResult &R = Parallel.Results[I];
    stats::JsonValue W = stats::JsonValue::object();
    W.set("name", stats::JsonValue(workloadName(Reqs[I].Kind)));
    W.set("candidates", stats::JsonValue(static_cast<uint64_t>(
                            R.Sweep.size())));
    W.set("winner", stats::JsonValue(R.Valid ? R.Best.str() : "invalid"));
    W.set("best_us", stats::JsonValue(R.Valid ? R.BestUs : 0.0));
    Workloads.push(std::move(W));
  }
  stats::JsonValue Extra = stats::JsonValue::object();
  Extra.set("shape", stats::JsonValue(Paper ? "paper" : "test"));
  Extra.set("workers", stats::JsonValue(Workers));
  Extra.set("identical_results", stats::JsonValue(Identical));
  Extra.set("workloads", std::move(Workloads));
  Rep.setExtra(std::move(Extra));
  return Rep;
}

} // namespace

int main(int argc, char **argv) {
  std::string JsonPath;
  bool Paper = false;
  unsigned Workers = 4;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--json" && I + 1 < argc)
      JsonPath = argv[++I];
    else if (Arg == "--paper")
      Paper = true;
    else if (Arg == "--workers" && I + 1 < argc)
      Workers = static_cast<unsigned>(std::atoi(argv[++I]));
    else {
      std::fprintf(stderr, "usage: %s [--json PATH] [--paper] [--workers N]\n",
                   argv[0]);
      return 2;
    }
  }

  gpusim::Gpu Device;
  // The paper's Figure 2 entry point: every GEMM-family kernel plus
  // attention, i.e. the workloads with non-trivial candidate grids.
  std::vector<triton::SweepRequest> Requests;
  for (WorkloadKind Kind :
       {WorkloadKind::MmLeakyRelu, WorkloadKind::FusedFF, WorkloadKind::Bmm,
        WorkloadKind::FlashAttention}) {
    triton::SweepRequest R;
    R.Kind = Kind;
    R.Shape = Paper ? paperShape(Kind) : testShape(Kind);
    Requests.push_back(R);
  }

  // The paper's measurement protocol at reduced weight; CUASMRL_FAST
  // shrinks it further for smoke runs.
  gpusim::MeasureConfig Measure;
  Measure.WarmupIters = bench::fastMode() ? 2 : 10;
  Measure.RepeatIters = bench::fastMode() ? 3 : 25;

  std::printf("bench_autotune_sweep: %zu workloads (%s shapes), "
              "%u hardware threads\n\n",
              Requests.size(), Paper ? "paper" : "test",
              std::thread::hardware_concurrency());

  Outcome Serial = runSweep(Device, Requests, /*Workers=*/1, Measure);
  Outcome Parallel = runSweep(Device, Requests, Workers, Measure);
  bool Identical = identicalResults(Serial.Results, Parallel.Results);
  double Speedup = Serial.Millis / std::max(0.001, Parallel.Millis);

  std::printf("%-28s %10s %16s\n", "engine", "wall ms", "candidates/s");
  std::printf("%-28s %10.1f %16.1f\n", "serial (1 worker)", Serial.Millis,
              Serial.CandidatesPerSec);
  std::printf("%-28s %10.1f %16.1f\n",
              ("parallel (" + std::to_string(Workers) + " workers)").c_str(),
              Parallel.Millis, Parallel.CandidatesPerSec);
  std::printf("\nsweep speedup: %.2fx\n", Speedup);
  std::printf("bit-identical results: %s\n", Identical ? "yes" : "NO (BUG)");

  stats::BenchReport Report =
      buildReport(Requests, Serial, Parallel, Workers, Identical, Paper);
  if (!bench::emitReport(Report, JsonPath))
    return 1;

  // Determinism is enforced everywhere; the throughput target only
  // where the hardware can physically provide it.
  bool EnforceSpeedup =
      std::thread::hardware_concurrency() >= 4 && !bench::fastMode();
  bool Pass = Identical && (!EnforceSpeedup || Speedup >= 2.0);
  std::printf("\n%s: %.2fx %s 2x target at %u workers%s\n",
              Pass ? "PASS" : "FAIL", Speedup,
              Speedup >= 2.0 ? ">=" : "<", Workers,
              EnforceSpeedup ? ""
                             : " (target not enforced: <4 hardware threads "
                               "or smoke mode)");
  return Pass ? 0 : 1;
}

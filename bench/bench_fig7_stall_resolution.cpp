//===- bench/bench_fig7_stall_resolution.cpp - reproduces paper Figure 7 -----===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Regenerates Figure 7: the percentage of stall-count dependencies
// resolved by the built-in table (db), inferred by the analysis pass
// (infer-only), and denylisted (not resolved), averaged over the Table 2
// kernels. The paper reports 41.7% / 29.2% / remainder on average.
//
//===----------------------------------------------------------------------===//

#include "analysis/StallAnalysis.h"
#include "kernels/Builder.h"
#include "support/StringUtils.h"
#include "support/Table.h"
#include "triton/Autotuner.h"

#include <iostream>

using namespace cuasmrl;
using namespace cuasmrl::kernels;

int main() {
  std::cout << "== Figure 7: stall-count dependency resolution ==\n\n";

  Table Out({"kernel", "db %", "infer-only %", "denylisted %", "deps"});
  double SumDb = 0, SumInfer = 0, SumDeny = 0;
  unsigned Kernels = 0;

  for (WorkloadKind Kind : allWorkloads()) {
    gpusim::Gpu Device;
    Rng DataRng(3);
    WorkloadShape Shape = paperShape(Kind);
    triton::Autotuner Tuner;
    triton::AutotuneResult Tuned = Tuner.tune(Device, Kind, Shape, DataRng);
    BuiltKernel K = buildKernel(Device, Kind, Shape, Tuned.Best,
                                ScheduleStyle::TritonO3, DataRng);

    analysis::StallAnalysis A = analysis::analyzeStallCounts(
        K.Prog, analysis::StallTable::builtin());
    Out.addRow({workloadName(Kind), formatDouble(A.pctTable(), 1),
                formatDouble(A.pctInferred(), 1),
                formatDouble(A.pctDenylisted(), 1),
                std::to_string(static_cast<unsigned>(A.totalDeps()))});
    SumDb += A.pctTable();
    SumInfer += A.pctInferred();
    SumDeny += A.pctDenylisted();
    ++Kernels;
  }
  Out.addRow({"average", formatDouble(SumDb / Kernels, 1),
              formatDouble(SumInfer / Kernels, 1),
              formatDouble(SumDeny / Kernels, 1), "-"});
  Out.print(std::cout);
  std::cout << "\npaper averages: db 41.7%, infer-only 29.2%, denylisted "
               "29.1%\n";
  return 0;
}

//===- bench/bench_fig8_hyperparam_sweep.cpp - reproduces paper Figure 8 -----===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Regenerates Figure 8: episodic returns while optimizing fused GEMM +
// LeakyReLU under sweeps of the two most significant hyperparameters
// (learning rate and training batch size). The default setting must
// converge to the best episodic return, demonstrating robustness (§5.5).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "support/StringUtils.h"
#include "support/Table.h"
#include "triton/Autotuner.h"

#include <iostream>

using namespace cuasmrl;
using namespace cuasmrl::bench;
using namespace cuasmrl::kernels;

namespace {

struct Setting {
  const char *Name;
  double Lr;
  unsigned RolloutLen;
};

} // namespace

int main() {
  unsigned Steps = stepsBudget(2048);
  std::cout << "== Figure 8: episodic returns under hyperparameter sweeps "
               "(fused GEMM+LeakyReLU, "
            << Steps << " steps each) ==\n\n";

  // Default (bench-scaled) + learning-rate and batch-size variants.
  const Setting Settings[] = {
      {"default (lr=1e-3, batch=64)", 1e-3, 64},
      {"lr=5e-3", 5e-3, 64},
      {"lr=1e-4", 1e-4, 64},
      {"batch=32", 1e-3, 32},
      {"batch=128", 1e-3, 128},
  };

  gpusim::Gpu Device;
  Rng DataRng(3);
  WorkloadShape Shape = paperShape(WorkloadKind::MmLeakyRelu);
  triton::Autotuner Tuner;
  triton::AutotuneResult Tuned =
      Tuner.tune(Device, WorkloadKind::MmLeakyRelu, Shape, DataRng);
  BuiltKernel K = buildKernel(Device, WorkloadKind::MmLeakyRelu, Shape,
                              Tuned.Best, ScheduleStyle::TritonO3, DataRng);

  std::vector<std::vector<std::pair<unsigned, double>>> Curves;
  std::vector<double> FinalReturns;
  for (const Setting &S : Settings) {
    env::AssemblyGame Game(Device, K, trainingGameConfig());
    core::GameEnvAdapter Env(Game);
    rl::PpoConfig C = benchPpoConfig(Steps, /*Seed=*/7);
    C.Lr = S.Lr;
    C.RolloutLen = S.RolloutLen;
    rl::PpoTrainer Trainer({&Env}, C);
    std::vector<rl::UpdateStats> Series = Trainer.train();
    std::vector<std::pair<unsigned, double>> Curve;
    for (const rl::UpdateStats &U : Series)
      Curve.push_back({U.StepsDone, U.MeanEpisodicReturn});
    FinalReturns.push_back(Series.back().MeanEpisodicReturn);
    Curves.push_back(std::move(Curve));
    std::cout << "  trained " << S.Name << ": final return "
              << formatDouble(FinalReturns.back(), 3) << "\n";
  }

  std::cout << "\nepisodic return vs environment step:\n";
  std::vector<std::string> Header = {"step"};
  for (const Setting &S : Settings)
    Header.push_back(S.Name);
  Table Out(Header);
  size_t Points = Curves[0].size();
  for (size_t P = 0; P < Points; P += std::max<size_t>(1, Points / 10)) {
    std::vector<std::string> Row = {
        std::to_string(Curves[0][P].first)};
    for (const auto &Curve : Curves)
      Row.push_back(P < Curve.size() ? formatDouble(Curve[P].second, 3)
                                     : "-");
    Out.addRow(Row);
  }
  Out.print(std::cout);

  bool DefaultBest = true;
  for (size_t I = 1; I < FinalReturns.size(); ++I)
    if (FinalReturns[I] > FinalReturns[0] + 0.5)
      DefaultBest = false;
  std::cout << "\ndefault setting converges to the best (or tied) "
               "episodic return: "
            << (DefaultBest ? "yes" : "no")
            << "   (paper: 'the RL agent consistently converges' under "
               "the default)\n";
  return 0;
}

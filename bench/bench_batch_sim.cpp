//===- bench/bench_batch_sim.cpp - lockstep batch simulation bench -----------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Throughput of the lockstep batch entry points against their serial
/// one-at-a-time equivalents, on the same work:
///
///  - `Gpu::runBatch` over N schedule variants vs N private-snapshot
///    `Gpu::run` calls (the raw simulation core);
///  - `measureKernelBatch` over N lanes vs N `measureKernel` calls
///    (the warmup/repeat protocol the reward loop and the sweep engine
///    pay for).
///
/// Both comparisons verify bit-identical results first — batching that
/// changed any lane's outcome would be a determinism bug, not a
/// speedup. Batching does not reduce simulated work; the deltas
/// reported here are pure overhead amortization (write-buffer pool
/// rotation, decode sharing), so expect modest ratios near 1.
///
/// Emits a machine-readable JSON report (see tools/run_benchmarks.py):
///
///   bench_batch_sim [--json PATH] [--iters N]
///
/// Env overrides: CUASMRL_FAST=1 (1/8 iteration budget).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "gpusim/Measurement.h"
#include "kernels/Builder.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace cuasmrl;
using namespace cuasmrl::kernels;

namespace {

using Clock = std::chrono::steady_clock;

double millisSince(Clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - Start)
      .count();
}

/// One benched kernel: the built program plus deterministic adjacent
/// swap variants of its schedule (the batch lanes).
struct LaneSet {
  gpusim::Gpu Device;
  BuiltKernel K;
  std::vector<sass::Program> Progs;
  std::vector<gpusim::DecodedProgram> Images;
};

std::unique_ptr<LaneSet> buildLanes(WorkloadKind Kind, unsigned Variants) {
  auto Set = std::make_unique<LaneSet>();
  Rng DataRng(7);
  Set->K = buildKernel(Set->Device, Kind, testShape(Kind),
                       candidateConfigs(Kind).front(),
                       ScheduleStyle::TritonO3, DataRng);

  std::vector<size_t> Pairs;
  for (size_t I = 0; I + 1 < Set->K.Prog.size(); ++I)
    if (Set->K.Prog.stmt(I).isInstr() && Set->K.Prog.stmt(I + 1).isInstr())
      Pairs.push_back(I);

  sass::Program Work = Set->K.Prog;
  for (unsigned V = 0; V < Variants; ++V) {
    if (V)
      for (unsigned S = 0; S < 3; ++S) {
        size_t Idx =
            (1103515245u * (3 * (V - 1) + S) + 12345u * V) % Pairs.size();
        Work.swap(Pairs[Idx], Pairs[Idx] + 1);
      }
    Set->Progs.push_back(Work);
  }
  for (const sass::Program &P : Set->Progs)
    Set->Images.emplace_back(P);
  return Set;
}

bool sameRun(const gpusim::RunResult &A, const gpusim::RunResult &B) {
  return A.Valid == B.Valid && A.Cycles == B.Cycles &&
         A.Counters.IssuedInstrs == B.Counters.IssuedInstrs &&
         A.Counters.StallWaitCycles == B.Counters.StallWaitCycles &&
         A.Counters.DramBytes == B.Counters.DramBytes;
}

bool sameMeasure(const gpusim::Measurement &A, const gpusim::Measurement &B) {
  return A.Valid == B.Valid && A.MeanUs == B.MeanUs &&
         A.StddevUs == B.StddevUs && A.Cycles == B.Cycles;
}

struct Comparison {
  double SerialMs = 0.0;
  double BatchMs = 0.0;
  bool Identical = true;
  gpusim::PerfCounters Counters; ///< Summed over the batch-side runs.
  double ratio() const { return SerialMs / std::max(0.001, BatchMs); }
};

/// Raw core: runBatch vs N private-snapshot run() calls.
Comparison compareRunBatch(std::vector<std::unique_ptr<LaneSet>> &Sets,
                           unsigned Iters) {
  Comparison Out;
  for (unsigned It = 0; It < Iters; ++It) {
    for (std::unique_ptr<LaneSet> &Set : Sets) {
      std::vector<gpusim::RunResult> Serial(Set->Progs.size());
      Clock::time_point T0 = Clock::now();
      for (size_t I = 0; I < Set->Progs.size(); ++I) {
        gpusim::Gpu Lane(Set->Device);
        Serial[I] = Lane.run(Set->Progs[I], Set->Images[I], Set->K.Launch,
                             gpusim::RunMode::Timed, 2);
      }
      Out.SerialMs += millisSince(T0);

      std::vector<gpusim::Gpu::BatchCandidate> Cands(Set->Progs.size());
      for (size_t I = 0; I < Set->Progs.size(); ++I)
        Cands[I] = {&Set->Progs[I], &Set->Images[I]};
      T0 = Clock::now();
      std::vector<gpusim::RunResult> Batch =
          Set->Device.runBatch(Cands, Set->K.Launch, gpusim::RunMode::Timed,
                               2);
      Out.BatchMs += millisSince(T0);

      for (size_t I = 0; I < Serial.size(); ++I) {
        Out.Identical &= sameRun(Serial[I], Batch[I]);
        Out.Counters += Batch[I].Counters;
      }
    }
  }
  return Out;
}

/// Measurement protocol: measureKernelBatch vs N measureKernel calls.
Comparison compareMeasureBatch(std::vector<std::unique_ptr<LaneSet>> &Sets,
                               unsigned Iters) {
  gpusim::MeasureConfig MC;
  MC.WarmupIters = 2;
  MC.RepeatIters = 3;
  MC.MaxBlocks = 2;

  Comparison Out;
  for (unsigned It = 0; It < Iters; ++It) {
    for (std::unique_ptr<LaneSet> &Set : Sets) {
      // Lane devices are rebuilt per side from the same base snapshot,
      // so both sides measure identical device state.
      std::vector<gpusim::Gpu> SerialDevs(Set->Progs.size(), Set->Device);
      std::vector<gpusim::Measurement> Serial(Set->Progs.size());
      Clock::time_point T0 = Clock::now();
      for (size_t I = 0; I < Set->Progs.size(); ++I)
        Serial[I] = measureKernel(SerialDevs[I], Set->Progs[I],
                                  Set->Images[I], Set->K.Launch, MC);
      Out.SerialMs += millisSince(T0);

      std::vector<gpusim::Gpu> BatchDevs(Set->Progs.size(), Set->Device);
      std::vector<gpusim::BatchMeasureLane> Lanes(Set->Progs.size());
      for (size_t I = 0; I < Set->Progs.size(); ++I)
        Lanes[I] = {&BatchDevs[I], &Set->Progs[I], &Set->Images[I],
                    &Set->K.Launch, MC};
      T0 = Clock::now();
      std::vector<gpusim::Measurement> Batch =
          gpusim::measureKernelBatch(Lanes);
      Out.BatchMs += millisSince(T0);

      for (size_t I = 0; I < Serial.size(); ++I) {
        Out.Identical &= sameMeasure(Serial[I], Batch[I]);
        Out.Counters += Batch[I].Counters;
      }
    }
  }
  return Out;
}

stats::BenchReport buildReport(size_t Lanes, unsigned Iters,
                               const Comparison &Run,
                               const Comparison &Measure) {
  stats::BenchReport Rep("batch_sim", bench::reportMeta());
  Rep.addMetric("run_serial_ms", Run.SerialMs, "ms",
                /*HigherIsBetter=*/false);
  Rep.addMetric("run_batch_ms", Run.BatchMs, "ms", /*HigherIsBetter=*/false);
  Rep.addMetric("run_batch_ratio", Run.ratio(), "x");
  Rep.addMetric("measure_serial_ms", Measure.SerialMs, "ms",
                /*HigherIsBetter=*/false);
  Rep.addMetric("measure_batch_ms", Measure.BatchMs, "ms",
                /*HigherIsBetter=*/false);
  Rep.addMetric("measure_batch_ratio", Measure.ratio(), "x");
  gpusim::PerfCounters Total = Run.Counters;
  Total += Measure.Counters;
  Rep.setSimCounters(Total);

  stats::JsonValue Extra = stats::JsonValue::object();
  Extra.set("lanes", stats::JsonValue(static_cast<uint64_t>(Lanes)));
  Extra.set("iters", stats::JsonValue(Iters));
  Extra.set("identical_results",
            stats::JsonValue(Run.Identical && Measure.Identical));
  Rep.setExtra(std::move(Extra));
  return Rep;
}

} // namespace

int main(int argc, char **argv) {
  std::string JsonPath;
  unsigned Iters = 24;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--json" && I + 1 < argc)
      JsonPath = argv[++I];
    else if (Arg == "--iters" && I + 1 < argc)
      Iters = static_cast<unsigned>(std::atoi(argv[++I]));
    else {
      std::fprintf(stderr, "usage: %s [--json PATH] [--iters N]\n", argv[0]);
      return 2;
    }
  }
  if (bench::fastMode())
    Iters = std::max(2u, Iters / 8);

  std::vector<std::unique_ptr<LaneSet>> Sets;
  size_t Lanes = 0;
  for (WorkloadKind Kind :
       {WorkloadKind::MmLeakyRelu, WorkloadKind::FlashAttention,
        WorkloadKind::Softmax}) {
    Sets.push_back(buildLanes(Kind, /*Variants=*/6));
    Lanes += Sets.back()->Progs.size();
  }

  std::printf("bench_batch_sim: %zu lanes x %u iterations\n\n", Lanes,
              Iters);
  Comparison Run = compareRunBatch(Sets, Iters);
  Comparison Measure = compareMeasureBatch(Sets, Iters);

  std::printf("%-24s %12s %12s %8s\n", "entry point", "serial ms",
              "batch ms", "ratio");
  std::printf("%-24s %12.1f %12.1f %8.3f\n", "Gpu::runBatch", Run.SerialMs,
              Run.BatchMs, Run.ratio());
  std::printf("%-24s %12.1f %12.1f %8.3f\n", "measureKernelBatch",
              Measure.SerialMs, Measure.BatchMs, Measure.ratio());
  std::printf("bit-identical results: %s\n",
              (Run.Identical && Measure.Identical) ? "yes" : "NO (BUG)");

  stats::BenchReport Report = buildReport(Lanes, Iters, Run, Measure);
  if (!bench::emitReport(Report, JsonPath))
    return 1;

  // Identity is the hard requirement; wall-clock ratios are tracked
  // via the JSON artifact, not gated (batching is overhead
  // amortization, not a work reduction).
  bool Pass = Run.Identical && Measure.Identical;
  std::printf("\n%s: batch results %s serial results\n",
              Pass ? "PASS" : "FAIL", Pass ? "match" : "DIVERGE from");
  return Pass ? 0 : 1;
}

//===- bench/bench_table3_workload_analysis.cpp - reproduces paper Table 3 ---===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Regenerates Table 3: the Nsight-Compute-style compute and memory
// workload analysis of fused GEMM with the LeakyReLU epilogue, compared
// between the CuAsmRL-optimized and the Triton schedules. The paper
// finds near-identical compute utilization but ~11% higher memory
// throughput for CuAsmRL (better latency hiding, not more work).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "support/StringUtils.h"
#include "support/Table.h"
#include "triton/Autotuner.h"

#include <iostream>

using namespace cuasmrl;
using namespace cuasmrl::bench;
using namespace cuasmrl::kernels;

namespace {

struct Metrics {
  double IpcActive, IpcElapsed, SmBusy, MemGBs, MemBusy, MaxBwPct;
};

Metrics collect(gpusim::Gpu &Device, const sass::Program &Prog,
                const gpusim::KernelLaunch &Launch) {
  gpusim::MeasureConfig M;
  M.WarmupIters = 1;
  M.RepeatIters = 1;
  M.MaxBlocks = Device.residentBlocks(Launch);
  gpusim::Measurement R = measureKernel(Device, Prog, Launch, M);
  const gpusim::PerfCounters &C = R.Counters;
  const gpusim::GpuSpec &Spec = Device.spec();
  double BytesPerCycle =
      C.ElapsedCycles ? static_cast<double>(C.DramBytes) / C.ElapsedCycles
                      : 0.0;
  Metrics Out;
  Out.IpcActive = C.ipcActive();
  Out.IpcElapsed = C.ipcElapsed();
  Out.SmBusy = C.smBusyPct();
  // Chip-wide DRAM throughput: per-SM bytes/cycle x clock x SM count.
  Out.MemGBs = BytesPerCycle * Spec.ClockGHz * Spec.NumSMs;
  Out.MemBusy = C.memBusyPct();
  Out.MaxBwPct = 100.0 * BytesPerCycle / Spec.DramBytesPerCycle;
  return Out;
}

} // namespace

int main() {
  unsigned Steps = stepsBudget(2500);
  std::cout << "== Table 3: compute and memory workload analysis, fused "
               "GEMM + LeakyReLU ==\n(RL budget "
            << Steps << " steps)\n\n";

  gpusim::Gpu Device;
  Rng DataRng(3);
  WorkloadShape Shape = paperShape(WorkloadKind::MmLeakyRelu);
  triton::Autotuner Tuner;
  triton::AutotuneResult Tuned =
      Tuner.tune(Device, WorkloadKind::MmLeakyRelu, Shape, DataRng);
  BuiltKernel K = buildKernel(Device, WorkloadKind::MmLeakyRelu, Shape,
                              Tuned.Best, ScheduleStyle::TritonO3, DataRng);

  TrainOutcome RL = trainOnKernel(Device, K, Steps);
  std::cout << "triton " << formatDouble(RL.TritonUs, 2) << "us -> cuasmrl "
            << formatDouble(RL.BestUs, 2) << "us ("
            << formatDouble(RL.speedup(), 3) << "x)\n\n";

  Metrics T = collect(Device, K.Prog, K.Launch);
  Metrics O = collect(Device, RL.BestProg, K.Launch);

  Table Out({"", "metric", "CuAsmRL", "Triton"});
  Out.addRow({"Compute", "Executed Ipc Active (inst/cycle)",
              formatDouble(O.IpcActive, 2), formatDouble(T.IpcActive, 2)});
  Out.addRow({"Resources", "Executed Ipc Elapsed (inst/cycle)",
              formatDouble(O.IpcElapsed, 2),
              formatDouble(T.IpcElapsed, 2)});
  Out.addRow({"", "SM Busy (%)", formatDouble(O.SmBusy, 2),
              formatDouble(T.SmBusy, 2)});
  Out.addRow({"Memory", "Memory Throughput (GB/s)",
              formatDouble(O.MemGBs, 2), formatDouble(T.MemGBs, 2)});
  Out.addRow({"Resources", "Mem Busy (%)", formatDouble(O.MemBusy, 2),
              formatDouble(T.MemBusy, 2)});
  Out.addRow({"", "Max Bandwidth (%)", formatDouble(O.MaxBwPct, 2),
              formatDouble(T.MaxBwPct, 2)});
  Out.print(std::cout);

  std::cout << "\npaper: IPC/SM-busy nearly equal; CuAsmRL memory "
               "throughput ~11% higher\n(175.71 vs 157.73 GB/s) with "
               "higher Mem Busy % — the optimized schedule\nmoves the "
               "same bytes in less time.\n";
  return 0;
}

#!/usr/bin/env python3
"""Diff two BenchReport files and gate on perf regressions.

Compares every metric the two reports share, direction-aware: for a
higher-is-better metric the ratio is new/old, for a lower-is-better
metric it is old/new, so a ratio of 1.0 always means "unchanged" and
ratios below the threshold always mean "got worse". A run passes when
every gated metric's ratio is >= the threshold.

Usage:
    tools/bench_compare.py OLD.json NEW.json [--threshold 0.9]
                           [--thresholds FILE] [--json-out PATH]
                           [--baseline-lenient] [--self-test]

  --threshold R         global pass bar (default 0.9 = tolerate a 10%
                        regression; CI uses a looser bar for noisy
                        shared runners)
  --thresholds FILE     JSON object mapping metric-name patterns
                        (fnmatch globs) to per-metric thresholds;
                        first matching pattern wins, falling back to
                        the global threshold. A threshold of 0 skips
                        the metric; the string "exact" requires the
                        values to be identical (for schedule-determined
                        counters, where any drift is a bug, not noise).
                        Built-in default: fault-injection counters
                        (faulty_count_*) gate exactly unless the file
                        overrides them.
  --json-out PATH       machine-readable verdict document
  --baseline-lenient    downgrade baseline problems (unreadable /
                        wrong-schema OLD, metrics missing from NEW) to
                        warnings — for bootstrapping a gate against
                        artifacts that predate the current schema
  --self-test           run the built-in scenario checks and exit

Exit status: 0 = pass, 1 = regression detected, 2 = error (unreadable
or invalid input, baseline metric missing from NEW).
"""

import argparse
import fnmatch
import json
import os
import sys
import tempfile

SCHEMA_VERSION = 1

# Patterns appended after any --thresholds file entries (first match
# wins, so a file can override these). Deterministic fault-injection
# counters are schedule-exact: a ratio bar would let drift through.
# The warm-start tensor-transfer count is determined by the net
# geometry alone, so any drift there is an architecture change worth
# flagging, not measurement noise. Likewise the RPC framing-health
# counters (net_count_*): a clean loopback run produces exactly zero
# decode errors and quota rejections.
DEFAULT_PER_METRIC = [("faulty_count_*", "exact"),
                      ("warm_start_tensors", "exact"),
                      ("net_count_*", "exact")]


def load_report(path):
    """Returns (report, None) or (None, error-string)."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return None, f"cannot read {path}: {e}"
    if not isinstance(doc, dict):
        return None, f"{path}: not a JSON object"
    if doc.get("schema_version") != SCHEMA_VERSION:
        return None, (f"{path}: schema_version "
                      f"{doc.get('schema_version')!r} "
                      f"(expected {SCHEMA_VERSION})")
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        return None, f"{path}: missing metrics object"
    for name, entry in metrics.items():
        if not isinstance(entry, dict) or \
                not isinstance(entry.get("value"), (int, float)):
            return None, f"{path}: metric {name!r} has no numeric value"
    return doc, None


def threshold_for(name, global_threshold, per_metric):
    for pattern, value in per_metric:
        if fnmatch.fnmatchcase(name, pattern):
            return value
    return global_threshold


def compare_reports(old, new, global_threshold, per_metric, lenient):
    """Returns (rows, missing, verdict). rows: one dict per shared
    metric; missing: baseline metrics absent from NEW; verdict: 'pass'
    or 'regression'."""
    rows = []
    old_metrics = old["metrics"]
    new_metrics = new["metrics"]
    missing = [n for n in old_metrics if n not in new_metrics]

    verdict = "pass"
    for name, entry in new_metrics.items():
        if name not in old_metrics:
            rows.append({"metric": name, "new": entry["value"],
                         "status": "new"})
            continue
        old_value = old_metrics[name]["value"]
        new_value = entry["value"]
        higher_is_better = entry.get("higher_is_better", True)
        bar = threshold_for(name, global_threshold, per_metric)
        if higher_is_better:
            numerator, denominator = new_value, old_value
        else:
            numerator, denominator = old_value, new_value
        if denominator == 0:
            ratio = 1.0 if numerator == 0 else float("inf")
        else:
            ratio = numerator / denominator
        if bar == "exact":
            status = "ok" if new_value == old_value else "REGRESSION"
            if status == "REGRESSION":
                verdict = "regression"
            rows.append({"metric": name, "old": old_value,
                         "new": new_value,
                         "unit": entry.get("unit", ""), "ratio": ratio,
                         "threshold": bar, "status": status})
            continue
        if bar <= 0:
            status = "skipped"
        elif ratio >= bar:
            status = "ok"
        else:
            status = "REGRESSION"
            verdict = "regression"
        rows.append({"metric": name, "old": old_value, "new": new_value,
                     "unit": entry.get("unit", ""), "ratio": ratio,
                     "threshold": bar, "status": status})
    if missing and not lenient:
        verdict = "error"
    return rows, missing, verdict


def print_table(rows, missing, old, new):
    print(f"baseline: {old['meta'].get('git_sha', '?')} "
          f"({old['meta'].get('timestamp', '?')})")
    print(f"current:  {new['meta'].get('git_sha', '?')} "
          f"({new['meta'].get('timestamp', '?')})")
    width = max([len(r["metric"]) for r in rows] + [6])
    print(f"{'metric':<{width}} {'old':>14} {'new':>14} {'ratio':>8} "
          f"{'bar':>6}  status")
    for r in rows:
        if r["status"] == "new":
            print(f"{r['metric']:<{width}} {'-':>14} {r['new']:>14.4g} "
                  f"{'-':>8} {'-':>6}  new metric")
            continue
        bar = (f"{r['threshold']:>6.2f}"
               if isinstance(r["threshold"], (int, float))
               else f"{r['threshold']:>6}")
        print(f"{r['metric']:<{width}} {r['old']:>14.4g} "
              f"{r['new']:>14.4g} {r['ratio']:>8.3f} "
              f"{bar}  {r['status']}")
    for name in missing:
        print(f"{name:<{width}} missing from new report")


def run_compare(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("old")
    parser.add_argument("new")
    parser.add_argument("--threshold", type=float, default=0.9)
    parser.add_argument("--thresholds")
    parser.add_argument("--json-out")
    parser.add_argument("--baseline-lenient", action="store_true")
    args = parser.parse_args(argv)

    per_metric = []
    if args.thresholds:
        try:
            with open(args.thresholds) as f:
                config = json.load(f)
            per_metric = list(config.items())
        except (OSError, json.JSONDecodeError, AttributeError) as e:
            print(f"error: bad thresholds file: {e}", file=sys.stderr)
            return 2
    per_metric += DEFAULT_PER_METRIC

    new, err = load_report(args.new)
    if err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    old, err = load_report(args.old)
    if err:
        if args.baseline_lenient:
            print(f"warning: {err}; baseline not comparable, passing "
                  "(lenient mode)", file=sys.stderr)
            if args.json_out:
                with open(args.json_out, "w") as f:
                    json.dump({"verdict": "pass",
                               "note": "baseline not comparable"}, f,
                              indent=2)
                    f.write("\n")
            return 0
        print(f"error: {err}", file=sys.stderr)
        return 2

    rows, missing, verdict = compare_reports(
        old, new, args.threshold, per_metric, args.baseline_lenient)
    print_table(rows, missing, old, new)

    if args.json_out:
        with open(args.json_out, "w") as f:
            json.dump({"verdict": verdict, "threshold": args.threshold,
                       "metrics": rows, "missing_metrics": missing}, f,
                      indent=2)
            f.write("\n")

    if verdict == "error":
        print("error: baseline metrics missing from new report: "
              + ", ".join(missing), file=sys.stderr)
        return 2
    if verdict == "regression":
        worst = min((r for r in rows if r["status"] == "REGRESSION"),
                    key=lambda r: r["ratio"])
        bar = (f"{worst['threshold']:.2f}"
               if isinstance(worst["threshold"], (int, float))
               else str(worst["threshold"]))
        print(f"\nFAIL: {worst['metric']} regressed to "
              f"{worst['ratio']:.3f}x (threshold {bar})")
        return 1
    print("\nPASS: no metric below threshold")
    return 0


# ---------------------------------------------------------------------------
# Self-test: the scenarios CI's docs job runs on every change.
# ---------------------------------------------------------------------------

def _report(metrics):
    return {
        "schema_version": SCHEMA_VERSION,
        "bench": "selftest",
        "meta": {"git_sha": "t", "timestamp": "t"},
        "metrics": {
            name: {"value": value, "unit": unit,
                   "higher_is_better": higher}
            for name, (value, unit, higher) in metrics.items()
        },
    }


def self_test():
    failures = []

    def scenario(name, old_doc, new_doc, extra_args, expected_rc):
        with tempfile.TemporaryDirectory() as d:
            old_path = os.path.join(d, "old.json")
            new_path = os.path.join(d, "new.json")
            for path, doc in ((old_path, old_doc), (new_path, new_doc)):
                with open(path, "w") as f:
                    if isinstance(doc, str):
                        f.write(doc)
                    else:
                        json.dump(doc, f)
            rc = run_compare([old_path, new_path, *extra_args])
            marker = "ok" if rc == expected_rc else "FAIL"
            print(f"[{marker}] {name}: rc={rc} expected={expected_rc}")
            if rc != expected_rc:
                failures.append(name)

    base = _report({"throughput": (1000.0, "ops/s", True),
                    "latency": (10.0, "ms", False)})

    # A 15% throughput drop must fail a 0.9 threshold.
    regressed = _report({"throughput": (850.0, "ops/s", True),
                         "latency": (10.0, "ms", False)})
    scenario("regression detected", base, regressed,
             ["--threshold", "0.9"], 1)

    # Latency is lower-is-better: rising 10 -> 12 ms must also fail.
    slower = _report({"throughput": (1000.0, "ops/s", True),
                      "latency": (12.0, "ms", False)})
    scenario("lower-is-better regression detected", base, slower,
             ["--threshold", "0.9"], 1)

    # Improvements and within-threshold noise pass.
    improved = _report({"throughput": (1300.0, "ops/s", True),
                        "latency": (9.0, "ms", False)})
    scenario("improvement passes", base, improved,
             ["--threshold", "0.9"], 0)
    noisy = _report({"throughput": (950.0, "ops/s", True),
                     "latency": (10.4, "ms", False)})
    scenario("within-threshold noise passes", base, noisy,
             ["--threshold", "0.9"], 0)

    # A tracked metric silently vanishing is an error...
    shrunk = _report({"throughput": (1000.0, "ops/s", True)})
    scenario("missing metric is an error", base, shrunk,
             ["--threshold", "0.9"], 2)
    # ...unless lenient mode is bootstrapping the gate.
    scenario("missing metric tolerated when lenient", base, shrunk,
             ["--threshold", "0.9", "--baseline-lenient"], 0)

    # Malformed and wrong-schema inputs are errors.
    scenario("malformed old JSON is an error", "{not json", base,
             ["--threshold", "0.9"], 2)
    scenario("malformed new JSON is an error", base, "{not json",
             ["--threshold", "0.9"], 2)
    wrong_schema = dict(_report({"throughput": (1.0, "ops/s", True)}),
                        schema_version=99)
    scenario("wrong schema version is an error", wrong_schema, base,
             ["--threshold", "0.9"], 2)
    scenario("wrong-schema baseline passes when lenient", wrong_schema,
             base, ["--threshold", "0.9", "--baseline-lenient"], 0)

    # New metrics (absent from the baseline) never gate.
    grown = _report({"throughput": (1000.0, "ops/s", True),
                     "latency": (10.0, "ms", False),
                     "extra_metric": (5.0, "x", True)})
    scenario("new metric passes", base, grown, ["--threshold", "0.9"], 0)

    # Exact-gated counters: the built-in faulty_count_* default holds
    # schedule-determined values to equality — a one-count drift fails
    # even though the ratio is well inside any noise threshold.
    fault_base = _report({"faulty_count_timeouts": (1.0, "count", True),
                          "faulty_ms": (50.0, "ms", False)})
    scenario("exact counter match passes", fault_base, fault_base,
             ["--threshold", "0.9"], 0)
    fault_drift = _report({"faulty_count_timeouts": (2.0, "count", True),
                           "faulty_ms": (50.0, "ms", False)})
    scenario("exact counter drift fails", fault_base, fault_drift,
             ["--threshold", "0.9"], 1)
    # "exact" also works as an explicit value in a thresholds file.
    with tempfile.TemporaryDirectory() as d:
        config_path = os.path.join(d, "thresholds.json")
        with open(config_path, "w") as f:
            json.dump({"latency": "exact"}, f)
        old_path = os.path.join(d, "old.json")
        new_path = os.path.join(d, "new.json")
        with open(old_path, "w") as f:
            json.dump(base, f)
        with open(new_path, "w") as f:
            json.dump(_report({"throughput": (1000.0, "ops/s", True),
                               "latency": (10.1, "ms", False)}), f)
        rc = run_compare([old_path, new_path, "--threshold", "0.9",
                          "--thresholds", config_path])
        marker = "ok" if rc == 1 else "FAIL"
        print(f"[{marker}] explicit exact threshold gates: rc={rc} "
              "expected=1")
        if rc != 1:
            failures.append("explicit exact threshold gates")

    # Per-metric thresholds: exempt one metric, gate the rest.
    with tempfile.TemporaryDirectory() as d:
        config_path = os.path.join(d, "thresholds.json")
        with open(config_path, "w") as f:
            json.dump({"throughput": 0}, f)
        old_path = os.path.join(d, "old.json")
        new_path = os.path.join(d, "new.json")
        with open(old_path, "w") as f:
            json.dump(base, f)
        with open(new_path, "w") as f:
            json.dump(regressed, f)
        rc = run_compare([old_path, new_path, "--threshold", "0.9",
                          "--thresholds", config_path])
        marker = "ok" if rc == 0 else "FAIL"
        print(f"[{marker}] per-metric threshold skip: rc={rc} expected=0")
        if rc != 0:
            failures.append("per-metric threshold skip")

    if failures:
        print(f"\nSELF-TEST FAIL: {len(failures)} scenario(s): "
              + ", ".join(failures))
        return 1
    print("\nSELF-TEST PASS")
    return 0


def main():
    argv = sys.argv[1:]
    if "--self-test" in argv:
        return self_test()
    return run_compare(argv)


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Checks that intra-repo markdown links do not dangle.

Scans every tracked .md file for inline links/images whose target is a
relative path (external URLs and pure #anchors are skipped) and fails
if the target does not exist relative to the linking file. Used by the
CI docs job; run locally from the repo root:

    python3 tools/check_markdown_links.py

Limitations (deliberate, to keep this a simple line scanner): links
whose [text](target) spans a line wrap and reference-style links
([text][ref]) are not checked — keep intra-repo links inline and on
one line.
"""

import os
import re
import sys

LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
SKIP_DIRS = {".git", "build", "build-asan", "build-tsan", ".claude"}


def markdown_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames
                       if d not in SKIP_DIRS and not d.startswith("build")]
        for name in filenames:
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def check_file(path, root):
    errors = []
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            for match in LINK_RE.finditer(line):
                target = match.group(1)
                if "://" in target or target.startswith(("#", "mailto:")):
                    continue
                target = target.split("#", 1)[0]
                if not target:
                    continue
                if target.startswith("/"):
                    resolved = os.path.join(root, target.lstrip("/"))
                else:
                    resolved = os.path.join(os.path.dirname(path), target)
                if not os.path.exists(resolved):
                    rel = os.path.relpath(path, root)
                    errors.append(f"{rel}:{lineno}: dangling link -> {target}")
    return errors


def main():
    root = os.getcwd()
    files = sorted(markdown_files(root))
    errors = []
    for path in files:
        errors.extend(check_file(path, root))
    for error in errors:
        print(error)
    print(f"checked {len(files)} markdown files: "
          f"{'FAIL' if errors else 'OK'} ({len(errors)} dangling)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())

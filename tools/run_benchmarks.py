#!/usr/bin/env python3
"""Run the tracked benchmarks and emit machine-readable reports.

Drives `bench_env_step` (and, when built, `bench_simulator_perf`) from a
CMake build tree and writes `BENCH_step_throughput.json`, plus
`bench_autotune_sweep` writing `BENCH_autotune_sweep.json` and
`bench_serve_throughput` writing `BENCH_serve_throughput.json` and
`bench_batch_sim` writing `BENCH_batch_sim.json`, so the per-PR perf
trajectory of the env-step hot path, the autotune sweep engine, the
optimization service and the lockstep batch-simulation entry points can
be tracked by CI and compared across revisions.

Usage:
    tools/run_benchmarks.py [--build-dir build] [--out BENCH_step_throughput.json]
                            [--sweep-out BENCH_autotune_sweep.json]
                            [--serve-out BENCH_serve_throughput.json]
                            [--batch-out BENCH_batch_sim.json]
                            [--steps N] [--timeout SECONDS]

Exit status: 0 on success (reports written), 1 when a benchmark binary
is missing or fails, 2 on bad arguments.
"""

import argparse
import json
import os
import subprocess
import sys


def run_env_step(build_dir, out_path, steps, timeout):
    exe = os.path.join(build_dir, "bench", "bench_env_step")
    if not os.path.exists(exe):
        print(f"error: {exe} not found (build the 'bench_env_step' target)",
              file=sys.stderr)
        return None
    cmd = [exe, "--json", out_path]
    if steps:
        cmd += ["--steps", str(steps)]
    print("+ " + " ".join(cmd))
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True,
                              timeout=timeout)
    except subprocess.TimeoutExpired:
        print(f"error: bench_env_step exceeded the {timeout}s guard",
              file=sys.stderr)
        return None
    sys.stdout.write(proc.stdout)
    sys.stderr.write(proc.stderr)
    if proc.returncode != 0:
        print(f"error: bench_env_step exited with {proc.returncode}",
              file=sys.stderr)
        return None
    with open(out_path) as f:
        return json.load(f)


def run_simulator_perf(build_dir, timeout):
    """Optional: google-benchmark phase microbenchmarks, if built."""
    exe = os.path.join(build_dir, "bench", "bench_simulator_perf")
    if not os.path.exists(exe):
        return None
    cmd = [exe, "--benchmark_format=json", "--benchmark_min_time=0.05"]
    print("+ " + " ".join(cmd))
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True,
                              timeout=timeout)
    except subprocess.TimeoutExpired:
        print("warning: bench_simulator_perf exceeded the guard; "
              "omitting its phases", file=sys.stderr)
        return None
    if proc.returncode != 0:
        print("warning: bench_simulator_perf failed; omitting its phases",
              file=sys.stderr)
        return None
    try:
        raw = json.loads(proc.stdout)
    except json.JSONDecodeError:
        print("warning: unparsable bench_simulator_perf output",
              file=sys.stderr)
        return None
    return {
        b["name"]: {"time_ns": b.get("real_time"),
                    "unit": b.get("time_unit")}
        for b in raw.get("benchmarks", [])
    }


def run_json_bench(name, build_dir, out_path, timeout):
    """Runs a serial-vs-parallel comparison bench that emits its own
    JSON report and self-checks bit-identity (the binary fails on a
    mismatch). Returns the parsed report, "absent" when the binary is
    not built (skipped, not an error — mirrors bench_simulator_perf),
    or None on failure."""
    exe = os.path.join(build_dir, "bench", name)
    if not os.path.exists(exe):
        print(f"warning: {exe} not found (build the '{name}' target to "
              "track its throughput); skipping", file=sys.stderr)
        return "absent"
    cmd = [exe, "--json", out_path]
    print("+ " + " ".join(cmd))
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True,
                              timeout=timeout)
    except subprocess.TimeoutExpired:
        print(f"error: {name} exceeded the {timeout}s guard",
              file=sys.stderr)
        return None
    sys.stdout.write(proc.stdout)
    sys.stderr.write(proc.stderr)
    if proc.returncode != 0:
        print(f"error: {name} exited with {proc.returncode}",
              file=sys.stderr)
        return None
    with open(out_path) as f:
        return json.load(f)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--out", default="BENCH_step_throughput.json")
    parser.add_argument("--sweep-out", default="BENCH_autotune_sweep.json")
    parser.add_argument("--serve-out", default="BENCH_serve_throughput.json")
    parser.add_argument("--batch-out", default="BENCH_batch_sim.json")
    parser.add_argument("--steps", type=int, default=0,
                        help="step budget per kernel (0 = bench default)")
    parser.add_argument("--timeout", type=int, default=1200,
                        help="per-binary wall-clock guard in seconds")
    args = parser.parse_args()

    report = run_env_step(args.build_dir, args.out, args.steps, args.timeout)
    if report is None:
        return 1

    phases = run_simulator_perf(args.build_dir, args.timeout)
    if phases is not None:
        report["simulator_phase_benchmarks"] = phases

    with open(args.out, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")

    # Step-throughput summary first: it is already on disk and must not
    # be suppressed by a sweep-bench problem.
    for kernel in report.get("kernels", []):
        print(f"{kernel['name']}: {kernel['steps_per_sec']:.1f} steps/s")
    print(f"wrote {args.out}")

    sweep = run_json_bench("bench_autotune_sweep", args.build_dir,
                           args.sweep_out, args.timeout)
    if sweep is None:
        return 1
    if sweep != "absent":
        print(f"autotune sweep: {sweep['speedup']:.2f}x at "
              f"{sweep['workers']} workers "
              f"(identical={sweep['identical_results']})")
        print(f"wrote {args.sweep_out}")

    serve = run_json_bench("bench_serve_throughput", args.build_dir,
                           args.serve_out, args.timeout)
    if serve is None:
        return 1
    if serve != "absent":
        print(f"serve throughput: {serve['speedup']:.2f}x at "
              f"{serve['workers']} workers on {serve['requests']} requests "
              f"(identical={serve['identical_results']})")
        print(f"wrote {args.serve_out}")

    batch = run_json_bench("bench_batch_sim", args.build_dir,
                           args.batch_out, args.timeout)
    if batch is None:
        return 1
    if batch != "absent":
        print(f"batch sim: run {batch['run_batch_ratio']:.3f}x / "
              f"measure {batch['measure_batch_ratio']:.3f}x over "
              f"{batch['lanes']} lanes "
              f"(identical={batch['identical_results']})")
        print(f"wrote {args.batch_out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Run the tracked benchmarks and emit structured BenchReport files.

Drives `bench_env_step` (and, when built, `bench_simulator_perf`) from a
CMake build tree and writes `BENCH_step_throughput.json`, plus
`bench_autotune_sweep` writing `BENCH_autotune_sweep.json`,
`bench_serve_throughput` writing `BENCH_serve_throughput.json` (and a
live `BENCH_serve_snapshots.jsonl` trajectory), `bench_batch_sim`
writing `BENCH_batch_sim.json` and `bench_warm_start` writing
`BENCH_warm_start.json` and `bench_net_roundtrip` writing
`BENCH_net_roundtrip.json`, so the per-PR perf trajectory of the
env-step hot path, the autotune sweep engine, the optimization
service, the lockstep batch-simulation entry points, the
generalist-policy warm-start payoff and the network front door's
round-trip overhead can be tracked by CI and compared across
revisions with tools/bench_compare.py.

Every report is a versioned BenchReport document (see
docs/OBSERVABILITY.md): schema_version, run metadata (git sha / build /
timestamp), a flat metrics object with units and comparison direction,
and optional simulator/service counter captures. This script validates
the shape of each report after the binary writes it.

Usage:
    tools/run_benchmarks.py [--build-dir build] [--out BENCH_step_throughput.json]
                            [--sweep-out BENCH_autotune_sweep.json]
                            [--serve-out BENCH_serve_throughput.json]
                            [--serve-snapshots BENCH_serve_snapshots.jsonl]
                            [--batch-out BENCH_batch_sim.json]
                            [--warm-out BENCH_warm_start.json]
                            [--net-out BENCH_net_roundtrip.json]
                            [--steps N] [--timeout SECONDS]

Exit status: 0 on success (reports written), 1 when a benchmark binary
is missing, fails, or emits an invalid report, 2 on bad arguments.
"""

import argparse
import json
import os
import subprocess
import sys

SCHEMA_VERSION = 1


def resolve_git_sha():
    """Benchmark binaries stamp meta.git_sha from CUASMRL_GIT_SHA (or
    GITHUB_SHA); fill it in from the working tree when absent."""
    if os.environ.get("CUASMRL_GIT_SHA") or os.environ.get("GITHUB_SHA"):
        return
    try:
        sha = subprocess.run(["git", "rev-parse", "HEAD"],
                             capture_output=True, text=True,
                             timeout=10).stdout.strip()
    except (subprocess.SubprocessError, OSError):
        sha = ""
    if sha:
        os.environ["CUASMRL_GIT_SHA"] = sha


def validate_report(report, path):
    """Structural check of one BenchReport document. Returns an error
    string, or None when the report is valid."""
    if not isinstance(report, dict):
        return f"{path}: report is not a JSON object"
    if report.get("schema_version") != SCHEMA_VERSION:
        return (f"{path}: schema_version {report.get('schema_version')!r} "
                f"(expected {SCHEMA_VERSION})")
    if not isinstance(report.get("bench"), str) or not report["bench"]:
        return f"{path}: missing bench name"
    meta = report.get("meta")
    if not isinstance(meta, dict) or "git_sha" not in meta:
        return f"{path}: missing meta.git_sha"
    metrics = report.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        return f"{path}: missing or empty metrics object"
    for name, entry in metrics.items():
        if not isinstance(entry, dict) or \
                not isinstance(entry.get("value"), (int, float)):
            return f"{path}: metric {name!r} has no numeric value"
    return None


def load_report(path):
    """Parses and validates the BenchReport a binary just wrote."""
    try:
        with open(path) as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read report {path}: {e}", file=sys.stderr)
        return None
    err = validate_report(report, path)
    if err:
        print(f"error: invalid BenchReport: {err}", file=sys.stderr)
        return None
    return report


def run_bench(name, build_dir, out_path, timeout, extra_args=(),
              optional=False):
    """Runs one report-emitting bench binary and returns its validated
    report; "absent" when an optional binary is not built; None on
    failure."""
    exe = os.path.join(build_dir, "bench", name)
    if not os.path.exists(exe):
        if optional:
            print(f"warning: {exe} not found (build the '{name}' target to "
                  "track its throughput); skipping", file=sys.stderr)
            return "absent"
        print(f"error: {exe} not found (build the '{name}' target)",
              file=sys.stderr)
        return None
    cmd = [exe, "--json", out_path, *extra_args]
    print("+ " + " ".join(cmd))
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True,
                              timeout=timeout)
    except subprocess.TimeoutExpired:
        print(f"error: {name} exceeded the {timeout}s guard",
              file=sys.stderr)
        return None
    sys.stdout.write(proc.stdout)
    sys.stderr.write(proc.stderr)
    if proc.returncode != 0:
        print(f"error: {name} exited with {proc.returncode}",
              file=sys.stderr)
        return None
    return load_report(out_path)


def run_simulator_perf(build_dir, timeout):
    """Optional: google-benchmark phase microbenchmarks, if built."""
    exe = os.path.join(build_dir, "bench", "bench_simulator_perf")
    if not os.path.exists(exe):
        return None
    cmd = [exe, "--benchmark_format=json", "--benchmark_min_time=0.05"]
    print("+ " + " ".join(cmd))
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True,
                              timeout=timeout)
    except subprocess.TimeoutExpired:
        print("warning: bench_simulator_perf exceeded the guard; "
              "omitting its phases", file=sys.stderr)
        return None
    if proc.returncode != 0:
        print("warning: bench_simulator_perf failed; omitting its phases",
              file=sys.stderr)
        return None
    try:
        raw = json.loads(proc.stdout)
    except json.JSONDecodeError:
        print("warning: unparsable bench_simulator_perf output",
              file=sys.stderr)
        return None
    return {
        b["name"]: {"time_ns": b.get("real_time"),
                    "unit": b.get("time_unit")}
        for b in raw.get("benchmarks", [])
    }


def metric(report, name):
    return report["metrics"][name]["value"]


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--out", default="BENCH_step_throughput.json")
    parser.add_argument("--sweep-out", default="BENCH_autotune_sweep.json")
    parser.add_argument("--serve-out", default="BENCH_serve_throughput.json")
    parser.add_argument("--serve-snapshots",
                        default="BENCH_serve_snapshots.jsonl",
                        help="live ServiceStats JSONL from the parallel "
                        "phase ('' disables)")
    parser.add_argument("--batch-out", default="BENCH_batch_sim.json")
    parser.add_argument("--warm-out", default="BENCH_warm_start.json")
    parser.add_argument("--net-out", default="BENCH_net_roundtrip.json")
    parser.add_argument("--steps", type=int, default=0,
                        help="step budget per kernel (0 = bench default)")
    parser.add_argument("--timeout", type=int, default=1200,
                        help="per-binary wall-clock guard in seconds")
    args = parser.parse_args()

    resolve_git_sha()

    step_args = ["--steps", str(args.steps)] if args.steps else []
    report = run_bench("bench_env_step", args.build_dir, args.out,
                       args.timeout, step_args)
    if report in (None, "absent"):
        return 1

    # Phase microbenchmarks ride along inside the env-step report's
    # free-form extra object (consumers must tolerate extra content).
    phases = run_simulator_perf(args.build_dir, args.timeout)
    if phases is not None:
        report.setdefault("extra", {})["simulator_phase_benchmarks"] = phases
        with open(args.out, "w") as f:
            json.dump(report, f, indent=2)
            f.write("\n")

    # Step-throughput summary first: it is already on disk and must not
    # be suppressed by a sweep-bench problem.
    for name, entry in report["metrics"].items():
        if name.endswith(".steps_per_sec"):
            kernel = name[:-len(".steps_per_sec")]
            print(f"{kernel}: {entry['value']:.1f} steps/s")
    print(f"wrote {args.out}")

    sweep = run_bench("bench_autotune_sweep", args.build_dir,
                      args.sweep_out, args.timeout, optional=True)
    if sweep is None:
        return 1
    if sweep != "absent":
        print(f"autotune sweep: {metric(sweep, 'speedup'):.2f}x "
              f"(identical={sweep['extra']['identical_results']})")
        print(f"wrote {args.sweep_out}")

    serve_args = []
    if args.serve_snapshots:
        serve_args = ["--snapshot-log", args.serve_snapshots]
    serve = run_bench("bench_serve_throughput", args.build_dir,
                      args.serve_out, args.timeout, serve_args,
                      optional=True)
    if serve is None:
        return 1
    if serve != "absent":
        print(f"serve throughput: {metric(serve, 'speedup'):.2f}x on "
              f"{serve['extra']['requests']} requests "
              f"(identical={serve['extra']['identical_results']})")
        print(f"wrote {args.serve_out}")
        if args.serve_snapshots and os.path.exists(args.serve_snapshots):
            with open(args.serve_snapshots) as f:
                lines = sum(1 for _ in f)
            print(f"wrote {args.serve_snapshots} ({lines} snapshots)")

    batch = run_bench("bench_batch_sim", args.build_dir, args.batch_out,
                      args.timeout, optional=True)
    if batch is None:
        return 1
    if batch != "absent":
        print(f"batch sim: run {metric(batch, 'run_batch_ratio'):.3f}x / "
              f"measure {metric(batch, 'measure_batch_ratio'):.3f}x over "
              f"{batch['extra']['lanes']} lanes "
              f"(identical={batch['extra']['identical_results']})")
        print(f"wrote {args.batch_out}")

    warm = run_bench("bench_warm_start", args.build_dir, args.warm_out,
                     args.timeout, step_args, optional=True)
    if warm is None:
        return 1
    if warm != "absent":
        print(f"warm start: winner in "
              f"{metric(warm, 'warm_updates_to_winner'):.0f} vs "
              f"{metric(warm, 'cold_updates_to_winner'):.0f} updates "
              f"({metric(warm, 'warm_start_tensors'):.0f} tensors "
              f"transferred)")
        print(f"wrote {args.warm_out}")

    net = run_bench("bench_net_roundtrip", args.build_dir, args.net_out,
                    args.timeout, optional=True)
    if net is None:
        return 1
    if net != "absent":
        print(f"net roundtrip: "
              f"{metric(net, 'net_sequential_us_per_request'):.1f} us/req "
              f"sequential vs {metric(net, 'inproc_us_per_request'):.1f} "
              f"in-process over {net['extra']['requests']} requests "
              f"(identical={net['extra']['identical_results']})")
        print(f"wrote {args.net_out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
